//! Opt-in allocation accounting.
//!
//! [`CountingAlloc`] wraps the system allocator and maintains process-wide
//! atomic counters: bytes allocated, bytes freed, live bytes, the
//! high-water mark of live bytes, and the allocation count. A binary opts
//! in by declaring it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rsd_obs::alloc::CountingAlloc = rsd_obs::alloc::CountingAlloc::new();
//! ```
//!
//! The wrapper stays **dormant** until telemetry initializes
//! ([`set_counting`], called by `rsd_obs::init`): a dormant allocator
//! costs one relaxed load and a predicted branch per allocation, so the
//! default `RSD_OBS`-off run keeps its wall-clock. Once counting is on,
//! every update is a relaxed atomic op — a few nanoseconds per
//! allocation. Binaries that don't opt in see all counters pinned at
//! zero ([`active`] returns `false`), and per-span allocation deltas
//! degrade to zero rather than lying.
//!
//! The monotonic [`allocated_bytes`] counter is what spans sample to
//! attribute allocation to pipeline stages; [`peak_live_bytes`] (resettable
//! via [`reset_peak`]) is what memory-regression gates compare.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Arm or disarm the counters. Called by `rsd_obs::init` when telemetry
/// comes up, so a [`CountingAlloc`] installed in a binary run with
/// telemetry off never pays for the bookkeeping. Counters cover the
/// process from the moment counting is armed.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

#[inline]
fn on_alloc(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    ACTIVE.store(true, Ordering::Relaxed);
    ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK.fetch_max(live.max(0) as u64, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    FREED.fetch_add(size as u64, Ordering::Relaxed);
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
}

/// A counting wrapper around [`System`], suitable as a
/// `#[global_allocator]`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for `static` declarations.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Accounted as free(old) + alloc(new) so `allocated_bytes`
            // stays monotone and live reflects the delta.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Whether a [`CountingAlloc`] is installed and has observed at least one
/// allocation in this process.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Total bytes ever allocated (monotone; spans diff this counter).
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Total bytes ever freed.
pub fn freed_bytes() -> u64 {
    FREED.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated minus freed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed).max(0) as u64
}

/// High-water mark of live bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Number of allocations observed.
pub fn alloc_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size, so a subsequent phase's
/// high-water mark can be measured in isolation.
pub fn reset_peak() {
    PEAK.store(live_bytes(), Ordering::Relaxed);
}

/// Publish the allocator counters as registry gauges
/// (`alloc.allocated_bytes`, `alloc.live_bytes`, `alloc.peak_live_bytes`,
/// `alloc.allocations`). No-op when telemetry is disabled or no counting
/// allocator is installed.
pub fn publish_gauges() {
    if !crate::enabled() || !active() {
        return;
    }
    let reg = crate::registry();
    reg.gauge_set("alloc.allocated_bytes", allocated_bytes() as f64);
    reg.gauge_set("alloc.freed_bytes", freed_bytes() as f64);
    reg.gauge_set("alloc.live_bytes", live_bytes() as f64);
    reg.gauge_set("alloc.peak_live_bytes", peak_live_bytes() as f64);
    reg.gauge_set("alloc.allocations", alloc_count() as f64);
}

/// The counters as a JSON object, or `Null` when inactive.
pub fn snapshot() -> crate::Value {
    if !active() {
        return crate::Value::Null;
    }
    let mut m = crate::Map::new();
    m.insert(
        "allocated_bytes",
        crate::Value::Int(allocated_bytes().into()),
    );
    m.insert("freed_bytes", crate::Value::Int(freed_bytes().into()));
    m.insert("live_bytes", crate::Value::Int(live_bytes().into()));
    m.insert(
        "peak_live_bytes",
        crate::Value::Int(peak_live_bytes().into()),
    );
    m.insert("allocations", crate::Value::Int(alloc_count().into()));
    crate::Value::Object(m)
}
