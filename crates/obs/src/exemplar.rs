//! Exemplar capture: bounded reservoirs of the slowest full request
//! breakdowns.
//!
//! Aggregate histograms say *that* p99 moved; an exemplar says *which*
//! request and *which stage*. Every [`crate::reqctx::ReqCtx::finish`]
//! offers its breakdown here; a [`Reservoir`] keeps exactly the K
//! slowest by `(total_ns, trace_id)` — the trace-id tie-break makes
//! retention deterministic under adversarial arrival orders (pinned by
//! the unit tests).
//!
//! Two global reservoirs run side by side: a *window* reservoir drained
//! into each `.series.ndjson` tick by the time-series driver, and a
//! *run* reservoir surviving to the final `ServeReport`. Capacity comes
//! from `RSD_OBS_EXEMPLARS` (default 4, hard-erroring on garbage per
//! the knob convention).

use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::sync::OnceLock;

use crate::reqctx::Stage;

/// Reservoir-capacity knob (K slowest kept per window and per run).
pub const KNOB: &str = "RSD_OBS_EXEMPLARS";
const DEFAULT_K: usize = 4;
const MAX_K: usize = 1024;

/// One captured request: identity, tags, and the per-stage breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id from the originating [`crate::reqctx::ReqCtx`].
    pub trace_id: u64,
    /// Scoring-backend tag.
    pub backend: &'static str,
    /// Risk-level tag.
    pub level: &'static str,
    /// End-to-end latency (equals the sum of `stages`).
    pub total_ns: u64,
    /// Per-stage breakdown, indexed by [`Stage::index`].
    pub stages: [u64; Stage::COUNT],
}

impl Exemplar {
    /// The stage this request spent the most time in (ties resolve to
    /// the earliest pipeline stage).
    pub fn slowest_stage(&self) -> (Stage, u64) {
        let mut best = (Stage::Queue, self.stages[0]);
        for stage in Stage::ALL {
            let ns = self.stages[stage.index()];
            if ns > best.1 {
                best = (stage, ns);
            }
        }
        best
    }

    /// JSON form used in series ticks and run reports: tags, total, the
    /// named slowest stage, and all stage durations in milliseconds.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("trace", Value::Int(self.trace_id as i128));
        m.insert("backend", Value::String(self.backend.to_string()));
        m.insert("level", Value::String(self.level.to_string()));
        m.insert("total_ms", Value::Float(self.total_ns as f64 / 1e6));
        m.insert(
            "slowest_stage",
            Value::String(self.slowest_stage().0.name().to_string()),
        );
        let mut stages = Map::new();
        for stage in Stage::ALL {
            stages.insert(
                stage.name(),
                Value::Float(self.stages[stage.index()] as f64 / 1e6),
            );
        }
        m.insert("stages", Value::Object(stages));
        Value::Object(m)
    }

    /// Deterministic retention order: slower first, trace id breaking
    /// exact-latency ties.
    fn rank(&self) -> (u64, u64) {
        (self.total_ns, self.trace_id)
    }
}

/// JSON array of exemplars (slowest first).
pub fn to_values(exemplars: &[Exemplar]) -> Value {
    Value::Array(exemplars.iter().map(Exemplar::to_value).collect())
}

/// A bounded reservoir keeping exactly the K slowest offers.
#[derive(Debug)]
pub struct Reservoir {
    k: usize,
    items: Vec<Exemplar>,
}

impl Reservoir {
    /// Reservoir keeping the `k` slowest offers (`k == 0` keeps none).
    pub fn new(k: usize) -> Reservoir {
        Reservoir {
            k,
            items: Vec::with_capacity(k.min(64)),
        }
    }

    /// Offer one exemplar; it displaces the fastest retained entry iff
    /// it ranks above it. O(K) with the small K this is built for.
    pub fn offer(&mut self, ex: Exemplar) {
        if self.k == 0 {
            return;
        }
        if self.items.len() < self.k {
            self.items.push(ex);
            return;
        }
        let (idx, fastest) = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.rank())
            .expect("non-empty reservoir");
        if ex.rank() > fastest.rank() {
            self.items[idx] = ex;
        }
    }

    /// Number of retained exemplars.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Retained exemplars, slowest first.
    pub fn sorted_desc(&self) -> Vec<Exemplar> {
        let mut out = self.items.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.rank()));
        out
    }

    /// Drain the reservoir, returning the retained exemplars slowest
    /// first and leaving it empty for the next window.
    pub fn drain_desc(&mut self) -> Vec<Exemplar> {
        let mut out = std::mem::take(&mut self.items);
        out.sort_by_key(|e| std::cmp::Reverse(e.rank()));
        out
    }
}

struct Globals {
    window: Reservoir,
    run: Reservoir,
}

fn globals() -> &'static Mutex<Globals> {
    static GLOBALS: OnceLock<Mutex<Globals>> = OnceLock::new();
    GLOBALS.get_or_init(|| {
        let k = capacity();
        Mutex::new(Globals {
            window: Reservoir::new(k),
            run: Reservoir::new(k),
        })
    })
}

/// Reservoir capacity: `RSD_OBS_EXEMPLARS`, default 4, validated into
/// `1..=1024` (garbage aborts naming the knob).
pub fn capacity() -> usize {
    crate::knob::bounded_usize_env(KNOB, 1, MAX_K, DEFAULT_K)
}

/// Offer an exemplar to both global reservoirs. Callers gate on
/// [`crate::ring::armed`] (as [`crate::reqctx::ReqCtx::finish`] does),
/// so disarmed runs never touch the lock.
pub fn offer(ex: Exemplar) {
    let mut g = globals().lock();
    g.window.offer(ex.clone());
    g.run.offer(ex);
}

/// Drain the per-window reservoir (slowest first) — called by the
/// time-series driver once per tick.
pub fn take_window() -> Vec<Exemplar> {
    globals().lock().window.drain_desc()
}

/// Snapshot of the run-wide reservoir (slowest first), without
/// draining — exported into `ServeReport`.
pub fn run_snapshot() -> Vec<Exemplar> {
    globals().lock().run.sorted_desc()
}

/// Clear both global reservoirs (test isolation, post-fit resets).
pub fn reset() {
    let mut g = globals().lock();
    g.window = Reservoir::new(g.window.k);
    g.run = Reservoir::new(g.run.k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(trace_id: u64, total_ns: u64) -> Exemplar {
        // Spread the total over two stages so slowest_stage is exercised.
        let mut stages = [0u64; Stage::COUNT];
        stages[Stage::Queue.index()] = total_ns / 3;
        stages[Stage::Score.index()] = total_ns - total_ns / 3;
        Exemplar {
            trace_id,
            backend: "gbdt",
            level: "Ideation",
            total_ns,
            stages,
        }
    }

    #[test]
    fn keeps_exactly_the_k_slowest_under_adversarial_orders() {
        let totals: Vec<u64> = (0..40u64).map(|i| (i * 7919) % 1000 + 1).collect();
        // The K slowest by (total, trace) regardless of arrival order.
        let mut want: Vec<(u64, u64)> = totals
            .iter()
            .enumerate()
            .map(|(t, &ns)| (ns, t as u64))
            .collect();
        want.sort_by_key(|&pair| std::cmp::Reverse(pair));
        want.truncate(5);

        // Ascending, descending, and interleaved arrival orders must
        // all retain the identical set, in the identical order.
        let mut orders: Vec<Vec<usize>> = vec![
            (0..totals.len()).collect(),
            (0..totals.len()).rev().collect(),
        ];
        let mut interleaved = Vec::new();
        let (mut lo, mut hi) = (0usize, totals.len() - 1);
        while lo <= hi {
            interleaved.push(lo);
            if lo != hi {
                interleaved.push(hi);
            }
            lo += 1;
            hi = hi.saturating_sub(1);
        }
        orders.push(interleaved);
        // Sorted-by-total arrival: every later offer displaces — the
        // worst case for an eviction bug.
        let mut by_total: Vec<usize> = (0..totals.len()).collect();
        by_total.sort_by_key(|&i| totals[i]);
        orders.push(by_total);

        for order in orders {
            let mut r = Reservoir::new(5);
            for &i in &order {
                r.offer(ex(i as u64, totals[i]));
            }
            assert_eq!(r.len(), 5);
            let got: Vec<(u64, u64)> = r
                .sorted_desc()
                .iter()
                .map(|e| (e.total_ns, e.trace_id))
                .collect();
            assert_eq!(got, want, "arrival order {order:?}");
        }
    }

    #[test]
    fn ties_resolve_by_trace_id() {
        let mut r = Reservoir::new(2);
        for t in 0..6u64 {
            r.offer(ex(t, 100));
        }
        // All totals equal: the highest trace ids win deterministically.
        let got: Vec<u64> = r.sorted_desc().iter().map(|e| e.trace_id).collect();
        assert_eq!(got, vec![5, 4]);
    }

    #[test]
    fn zero_capacity_keeps_nothing_and_drain_empties() {
        let mut z = Reservoir::new(0);
        z.offer(ex(1, 10));
        assert!(z.is_empty());

        let mut r = Reservoir::new(3);
        r.offer(ex(1, 10));
        r.offer(ex(2, 30));
        let drained = r.drain_desc();
        assert_eq!(
            drained.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![2, 1]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn exemplar_json_names_the_slowest_stage() {
        let e = ex(7, 900);
        assert_eq!(e.slowest_stage().0, Stage::Score);
        let v = e.to_value();
        assert_eq!(v["slowest_stage"].as_str(), Some("score"));
        assert_eq!(v["trace"].as_i64(), Some(7));
        assert!(v["stages"]["score"].as_f64().unwrap() > 0.0);
    }
}
