//! Chrome trace-event export.
//!
//! Converts a drained ring-event sequence (plus the registry's span
//! tree) into the Trace Event Format that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly:
//!
//! - [`crate::ring::EventKind::SpanEnd`] → `"ph":"X"` complete events
//!   (`ts`/`dur` in microseconds, one track per publishing thread,
//!   self-time in `args`);
//! - `Counter` / `StageProgress` → `"ph":"C"` counter tracks carrying
//!   **cumulative** values, so the counter graph is monotone and slopes
//!   read as throughput;
//! - `Gauge` → `"ph":"C"` with the raw gauge value;
//! - `StageRegister` / `StageFinish` → `"ph":"i"` instant events
//!   marking stage lifecycle on the global track.
//!
//! The collapsed-stack span tree rides along under the top-level
//! `spanTree` key (viewers ignore unknown keys) so one artifact holds
//! both the timeline and the aggregate profile.

use crate::ring::{EventKind, RingEvent};
use crate::TreeStat;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Shared fake pid: everything in one bench binary is one process.
const PID: u32 = 1;

fn us(t_ns: u64) -> Value {
    Value::Float(t_ns as f64 / 1e3)
}

fn base(ph: &str, name: &str, tid: u32, t_ns: u64) -> Map {
    let mut m = Map::new();
    m.insert("ph", Value::String(ph.to_string()));
    m.insert("name", Value::String(name.to_string()));
    m.insert("pid", Value::Int(i128::from(PID)));
    m.insert("tid", Value::Int(i128::from(tid)));
    m.insert("ts", us(t_ns));
    m.insert("cat", Value::String("rsd".to_string()));
    m
}

/// Render one ring event as a trace event, updating the cumulative
/// counter state. Returns `None` for events with no trace mapping.
fn trace_event(event: &RingEvent, counters: &mut BTreeMap<&'static str, (u64, u64)>) -> Value {
    match event.kind {
        EventKind::SpanEnd => {
            // `t_ns` is the span end; `a` its duration.
            let start = event.t_ns.saturating_sub(event.a);
            let mut m = base("X", event.label, event.thread, start);
            m.insert("dur", us(event.a));
            let mut args = Map::new();
            args.insert("self_ms", Value::Float(event.b as f64 / 1e6));
            m.insert("args", Value::Object(args));
            Value::Object(m)
        }
        EventKind::Counter => {
            let cum = counters.entry(event.label).or_insert((0, 0));
            cum.0 += event.a;
            let mut m = base("C", event.label, 0, event.t_ns);
            let mut args = Map::new();
            args.insert("value", Value::Int(i128::from(cum.0)));
            m.insert("args", Value::Object(args));
            Value::Object(m)
        }
        EventKind::StageProgress => {
            let cum = counters.entry(event.label).or_insert((0, 0));
            cum.0 += event.a;
            cum.1 += event.b;
            let mut m = base("C", event.label, 0, event.t_ns);
            let mut args = Map::new();
            args.insert("items", Value::Int(i128::from(cum.0)));
            args.insert("bytes", Value::Int(i128::from(cum.1)));
            m.insert("args", Value::Object(args));
            Value::Object(m)
        }
        EventKind::Gauge => {
            let mut m = base("C", event.label, 0, event.t_ns);
            let mut args = Map::new();
            args.insert("value", Value::Float(f64::from_bits(event.a)));
            m.insert("args", Value::Object(args));
            Value::Object(m)
        }
        EventKind::StageRegister | EventKind::StageFinish => {
            let mut m = base("i", event.label, event.thread, event.t_ns);
            m.insert("s", Value::String("g".to_string()));
            let mut args = Map::new();
            let phase = if event.kind == EventKind::StageRegister {
                "register"
            } else {
                "finish"
            };
            args.insert("stage_phase", Value::String(phase.to_string()));
            m.insert("args", Value::Object(args));
            Value::Object(m)
        }
    }
}

fn thread_meta(tid: u32) -> Value {
    let mut m = Map::new();
    m.insert("ph", Value::String("M".to_string()));
    m.insert("name", Value::String("thread_name".to_string()));
    m.insert("pid", Value::Int(i128::from(PID)));
    m.insert("tid", Value::Int(i128::from(tid)));
    let mut args = Map::new();
    let name = if tid == 0 {
        "main".to_string()
    } else {
        format!("thread-{tid}")
    };
    args.insert("name", Value::String(name));
    m.insert("args", Value::Object(args));
    Value::Object(m)
}

/// Render the drained events plus the span tree into a complete trace
/// JSON document (the string form of [`write_trace_to`]).
pub fn render_trace(events: &[RingEvent], tree: &[(String, TreeStat)]) -> String {
    let mut trace_events = Vec::with_capacity(events.len() + 8);

    // Process / thread naming metadata first.
    let mut proc_meta = Map::new();
    proc_meta.insert("ph", Value::String("M".to_string()));
    proc_meta.insert("name", Value::String("process_name".to_string()));
    proc_meta.insert("pid", Value::Int(i128::from(PID)));
    let mut args = Map::new();
    args.insert("name", Value::String("rsd".to_string()));
    proc_meta.insert("args", Value::Object(args));
    trace_events.push(Value::Object(proc_meta));

    let mut tids: Vec<u32> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd)
        .map(|e| e.thread)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        trace_events.push(thread_meta(tid));
    }

    let mut counters: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for event in events {
        trace_events.push(trace_event(event, &mut counters));
    }

    let mut span_tree = Map::new();
    for (path, stat) in tree {
        let mut m = Map::new();
        m.insert("count", Value::Int(stat.count as i128));
        m.insert("total_ms", Value::Float(stat.total_ns as f64 / 1e6));
        m.insert("self_ms", Value::Float(stat.self_ns as f64 / 1e6));
        span_tree.insert(path.as_str(), Value::Object(m));
    }

    let mut doc = Map::new();
    doc.insert("displayTimeUnit", Value::String("ms".to_string()));
    doc.insert("traceEvents", Value::Array(trace_events));
    if !span_tree.is_empty() {
        doc.insert("spanTree", Value::Object(span_tree));
    }
    Value::Object(doc).to_json()
}

/// Write the trace document to `path`, creating parent directories.
pub fn write_trace_to(
    path: &Path,
    events: &[RingEvent],
    tree: &[(String, TreeStat)],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(render_trace(events, tree).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &'static str, end_ns: u64, dur_ns: u64, thread: u32) -> RingEvent {
        RingEvent {
            t_ns: end_ns,
            a: dur_ns,
            b: dur_ns / 2,
            label,
            thread,
            kind: EventKind::SpanEnd,
        }
    }

    fn progress(label: &'static str, t_ns: u64, items: u64, bytes: u64) -> RingEvent {
        RingEvent {
            t_ns,
            a: items,
            b: bytes,
            label,
            thread: 0,
            kind: EventKind::StageProgress,
        }
    }

    #[test]
    fn spans_become_complete_events_with_micro_timestamps() {
        let events = [span("trace.work", 5_000_000, 2_000_000, 3)];
        let doc: Value = serde_json::from_str(&render_trace(&events, &[])).unwrap();
        let traced = doc["traceEvents"].as_array().unwrap();
        let x = traced
            .iter()
            .find(|e| e["ph"] == "X")
            .expect("complete event");
        assert_eq!(x["name"], "trace.work");
        assert_eq!(x["tid"], 3u32);
        // start = (5ms - 2ms) = 3000 µs, dur = 2000 µs.
        assert_eq!(x["ts"].as_f64().unwrap(), 3_000.0);
        assert_eq!(x["dur"].as_f64().unwrap(), 2_000.0);
        assert_eq!(x["args"]["self_ms"].as_f64().unwrap(), 1.0);
        // The publishing thread got a name track.
        assert!(traced
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "thread-3"));
    }

    #[test]
    fn stage_progress_counters_are_cumulative() {
        let events = [
            progress("trace.stage", 1_000, 5, 100),
            progress("trace.stage", 2_000, 3, 50),
        ];
        let doc: Value = serde_json::from_str(&render_trace(&events, &[])).unwrap();
        let counters: Vec<&Value> = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "C")
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0]["args"]["items"], 5u32);
        assert_eq!(counters[1]["args"]["items"], 8u32);
        assert_eq!(counters[1]["args"]["bytes"], 150u32);
    }

    #[test]
    fn span_tree_rides_along_and_doc_parses() {
        let tree = vec![(
            "a;b".to_string(),
            TreeStat {
                count: 2,
                total_ns: 4_000_000,
                self_ns: 1_000_000,
                max_ns: 3_000_000,
                alloc_bytes: 0,
                self_alloc_bytes: 0,
            },
        )];
        let doc: Value = serde_json::from_str(&render_trace(&[], &tree)).unwrap();
        assert_eq!(doc["spanTree"]["a;b"]["count"], 2u32);
        assert_eq!(doc["spanTree"]["a;b"]["total_ms"].as_f64().unwrap(), 4.0);
        assert_eq!(doc["displayTimeUnit"], "ms");
    }
}
