//! Run reports: a final machine-readable JSON summary each bench binary
//! writes next to its stdout tables (`bench_runs/<scale>/<bin>.report.json`).
//! The report embeds the full registry snapshot, so per-stage span
//! timings, counters, and throughput gauges all land in one artifact.

use serde_json::{Map, Value};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Builder for a run's summary artifact.
#[derive(Debug)]
pub struct RunReport {
    bin: &'static str,
    scale: String,
    seed: u64,
    config: Map,
    started: Instant,
}

impl RunReport {
    /// Start a report for one binary invocation. Call as early as
    /// possible so `elapsed_ms` covers the whole run.
    pub fn new(bin: &'static str, scale: impl Into<String>, seed: u64) -> RunReport {
        RunReport {
            bin,
            scale: scale.into(),
            seed,
            config: Map::new(),
            started: Instant::now(),
        }
    }

    /// Attach a config/context entry (model names, row counts, …).
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut RunReport {
        self.config.insert(key.into(), value);
        self
    }

    /// Assemble the report JSON: identity, config, total wall-clock, and
    /// the global registry snapshot.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("bin", Value::String(self.bin.to_string()));
        m.insert("scale", Value::String(self.scale.clone()));
        m.insert("seed", Value::Int(i128::from(self.seed)));
        m.insert(
            "elapsed_ms",
            Value::Float(self.started.elapsed().as_secs_f64() * 1e3),
        );
        if !self.config.is_empty() {
            m.insert("config", Value::Object(self.config.clone()));
        }
        m.insert("metrics", crate::snapshot());
        Value::Object(m)
    }

    /// Default artifact location for this report.
    pub fn default_path(&self) -> PathBuf {
        PathBuf::from("bench_runs")
            .join(&self.scale)
            .join(format!("{}.report.json", self.bin))
    }

    /// Write the report to [`RunReport::default_path`] when telemetry is
    /// enabled. Disabled runs are a no-op (`Ok(None)`) so the default
    /// `RSD_OBS=off` behaviour leaves the filesystem untouched.
    pub fn write(&self) -> std::io::Result<Option<PathBuf>> {
        if !crate::enabled() {
            return Ok(None);
        }
        let path = self.default_path();
        self.write_to(&path)?;
        Ok(Some(path))
    }

    /// Write the report JSON to an explicit path unconditionally.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_value().to_json_pretty().as_bytes())?;
        file.write_all(b"\n")?;
        Ok(())
    }
}
