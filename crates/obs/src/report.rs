//! Run reports: a final machine-readable JSON summary each bench binary
//! writes next to its stdout tables (`bench_runs/<scale>/<bin>.report.json`).
//! The report embeds the full registry snapshot, so per-stage span
//! timings, counters, and throughput gauges all land in one artifact.

use serde_json::{Map, Value};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Effective thread budget: a local replica of `rsd-par`'s `RSD_THREADS`
/// parse (absent/empty/`0`/unparsable → detected parallelism, capped at
/// 64). Duplicated here because `rsd-par` depends on `rsd-obs`, so the
/// report layer cannot call into the pool; the semantics are pinned by
/// `rsd-par`'s `parse_threads` tests.
fn effective_threads() -> usize {
    let detected = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(64);
    match std::env::var("RSD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.min(64),
            _ => detected,
        },
        Err(_) => detected,
    }
}

/// Run one git subcommand and return its trimmed stdout, or `None` if
/// git is missing, fails, or prints nothing usable.
fn git_capture(args: &[&str]) -> Option<String> {
    std::process::Command::new("git")
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
}

/// Decorate a short revision with the working-tree state: `status` is
/// `git status --porcelain` output (`None` when the check itself
/// failed, which leaves the revision undecorated rather than guessing).
/// Any non-empty porcelain output — staged, unstaged, or untracked —
/// marks the artifact as not reproducible from the commit alone.
fn decorate_rev(rev: String, status: Option<&str>) -> String {
    match status {
        Some(s) if !s.trim().is_empty() => format!("{rev}-dirty"),
        _ => rev,
    }
}

/// Short git revision of the working tree, suffixed `-dirty` when the
/// tree has uncommitted changes, or `"unknown"` outside a repo /
/// without git. Committed baselines carry this through `meta.git_rev`,
/// so a benchmark regenerated from a half-edited tree is visibly
/// tainted in any later diff.
fn git_rev() -> String {
    match git_capture(&["rev-parse", "--short", "HEAD"]).filter(|s| !s.is_empty()) {
        Some(rev) => {
            let status = git_capture(&["status", "--porcelain"]);
            decorate_rev(rev, status.as_deref())
        }
        None => "unknown".to_string(),
    }
}

/// The environment block every report (and `BENCH_kernels.json`)
/// embeds as `meta`: detected cores, the effective `RSD_THREADS`
/// budget, git revision, and the telemetry/profiling switches.
pub fn run_meta() -> Value {
    let mut m = Map::new();
    m.insert(
        "host_cores",
        Value::Int(
            std::thread::available_parallelism()
                .map(|n| n.get() as i128)
                .unwrap_or(1),
        ),
    );
    m.insert("rsd_threads", Value::Int(effective_threads() as i128));
    m.insert("git_rev", Value::String(git_rev()));
    m.insert("obs_mode", Value::String(crate::mode_desc()));
    m.insert("profile", Value::Bool(crate::profile_enabled()));
    Value::Object(m)
}

/// Builder for a run's summary artifact.
#[derive(Debug)]
pub struct RunReport {
    bin: &'static str,
    scale: String,
    seed: u64,
    config: Map,
    started: Instant,
}

impl RunReport {
    /// Start a report for one binary invocation. Call as early as
    /// possible so `elapsed_ms` covers the whole run.
    pub fn new(bin: &'static str, scale: impl Into<String>, seed: u64) -> RunReport {
        RunReport {
            bin,
            scale: scale.into(),
            seed,
            config: Map::new(),
            started: Instant::now(),
        }
    }

    /// Attach a config/context entry (model names, row counts, …).
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut RunReport {
        self.config.insert(key.into(), value);
        self
    }

    /// Assemble the report JSON: identity, config, total wall-clock, and
    /// the global registry snapshot.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("bin", Value::String(self.bin.to_string()));
        m.insert("scale", Value::String(self.scale.clone()));
        m.insert("seed", Value::Int(i128::from(self.seed)));
        m.insert(
            "elapsed_ms",
            Value::Float(self.started.elapsed().as_secs_f64() * 1e3),
        );
        if !self.config.is_empty() {
            m.insert("config", Value::Object(self.config.clone()));
        }
        m.insert("meta", run_meta());
        let alloc = crate::alloc::snapshot();
        if alloc != Value::Null {
            m.insert("alloc", alloc);
        }
        let latency = crate::hist::snapshot_value();
        if latency != Value::Null {
            m.insert("latency", latency);
        }
        m.insert("metrics", crate::snapshot());
        Value::Object(m)
    }

    /// Default artifact location for this report.
    pub fn default_path(&self) -> PathBuf {
        PathBuf::from("bench_runs")
            .join(&self.scale)
            .join(format!("{}.report.json", self.bin))
    }

    /// Write the report to [`RunReport::default_path`] when telemetry is
    /// enabled. Disabled runs are a no-op (`Ok(None)`) so the default
    /// `RSD_OBS=off` behaviour leaves the filesystem untouched.
    pub fn write(&self) -> std::io::Result<Option<PathBuf>> {
        if !crate::enabled() {
            return Ok(None);
        }
        let path = self.default_path();
        self.write_to(&path)?;
        Ok(Some(path))
    }

    /// Default location for this run's collapsed-stack profile.
    pub fn profile_path(&self) -> PathBuf {
        PathBuf::from("bench_runs")
            .join(&self.scale)
            .join(format!("{}.folded", self.bin))
    }

    /// Write the global span tree as a folded profile at
    /// [`RunReport::profile_path`] when `RSD_OBS_PROFILE` is on.
    /// Returns the path when a profile was written.
    pub fn write_profile(&self) -> std::io::Result<Option<PathBuf>> {
        if !crate::profile_enabled() || !crate::enabled() {
            return Ok(None);
        }
        let path = self.profile_path();
        crate::tree::write_folded_to(&path)?;
        Ok(Some(path))
    }

    /// Write the report JSON to an explicit path unconditionally.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_value().to_json_pretty().as_bytes())?;
        file.write_all(b"\n")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_status_leaves_rev_undecorated() {
        assert_eq!(decorate_rev("abc1234".into(), Some("")), "abc1234");
        assert_eq!(decorate_rev("abc1234".into(), Some("  \n")), "abc1234");
    }

    #[test]
    fn any_porcelain_output_marks_dirty() {
        for status in [
            " M crates/nn/src/quant.rs",
            "?? scratch.txt",
            "A  new.rs\n M old.rs",
        ] {
            assert_eq!(
                decorate_rev("abc1234".into(), Some(status)),
                "abc1234-dirty",
                "status {status:?}"
            );
        }
    }

    #[test]
    fn failed_status_check_does_not_guess() {
        assert_eq!(decorate_rev("abc1234".into(), None), "abc1234");
    }

    #[test]
    fn git_rev_matches_decorated_shape() {
        // Inside this repo the revision is short-hex with an optional
        // -dirty suffix; outside any repo it is "unknown". Accept both
        // so the test is environment-independent.
        let rev = git_rev();
        let hex = rev.strip_suffix("-dirty").unwrap_or(&rev);
        assert!(
            hex == "unknown" || (hex.len() >= 4 && hex.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected git_rev {rev:?}"
        );
    }
}
