//! Log-linear ("HDR-style") latency histograms with mergeable shards.
//!
//! [`HdrHist`] records `u64` nanosecond values into log-linear buckets:
//! values below 32 are exact; every octave `[2^e, 2^(e+1))` above that is
//! split into 32 linear sub-buckets. Quantile estimates use the bucket
//! midpoint, so the **documented error bound** is a relative error of at
//! most `1/64` (≈1.6%) for any value ≥ 32 ns, and zero below. Merging is
//! exact bucket-count addition, so merging per-worker shards in *any
//! order* yields bit-identical quantiles to single-shard recording — the
//! property the shard-merge proptests pin.
//!
//! The global registry keeps one shard map per thread-ordinal stripe:
//! [`observe_ns`] locks only the calling thread's stripe (uncontended in
//! steady state — `rsd-par` worker ordinals are stable), and
//! [`merged`] folds all stripes into one `HdrHist` per label for
//! snapshots and reports.

use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Sub-bucket bits per octave: 32 linear sub-buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Buckets: 32 exact low values + 32 sub-buckets for each octave
/// `e = 5..=63`.
const N_BUCKETS: usize = (SUB_COUNT as usize) * (64 - SUB_BITS as usize + 1);

/// Maximum relative quantile error for values ≥ 32 (midpoint of a
/// 1/32-wide sub-bucket): `1/64`.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 64.0;

/// A mergeable log-linear histogram over `u64` values (nanoseconds by
/// convention).
#[derive(Debug, Clone)]
pub struct HdrHist {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for HdrHist {
    fn default() -> HdrHist {
        HdrHist {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HdrHist {
    /// Fresh empty histogram.
    pub fn new() -> HdrHist {
        HdrHist::default()
    }

    /// Bucket index for a value.
    fn bucket(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let e = 63 - value.leading_zeros(); // e >= SUB_BITS
        let sub = (value >> (e - SUB_BITS)) - SUB_COUNT;
        ((e - SUB_BITS + 1) as u64 * SUB_COUNT + sub) as usize
    }

    /// Representative (midpoint) value for a bucket index.
    fn bucket_mid(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_COUNT {
            return idx;
        }
        let e = idx / SUB_COUNT - 1 + u64::from(SUB_BITS);
        let sub = idx % SUB_COUNT;
        let low = (SUB_COUNT + sub) << (e - u64::from(SUB_BITS));
        let width = 1u64 << (e - u64::from(SUB_BITS));
        low + width / 2
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another histogram into this one. Exact: bucket counts add,
    /// so quantiles after merging are independent of merge order.
    pub fn merge(&mut self, other: &HdrHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by cumulative walk,
    /// clamped to the observed `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Summary as a JSON object with millisecond quantiles
    /// (`count`, `sum_ms`, `min_ms`, `max_ms`, `mean_ms`, `p50_ms`,
    /// `p90_ms`, `p99_ms`, `p999_ms`).
    pub fn summary_ms(&self) -> Value {
        let ms = |ns: u64| Value::Float(ns as f64 / 1e6);
        let mut m = Map::new();
        m.insert("count", Value::Int(self.count as i128));
        m.insert("sum_ms", Value::Float(self.sum as f64 / 1e6));
        if self.count > 0 {
            m.insert("min_ms", ms(self.min));
            m.insert("max_ms", ms(self.max));
            m.insert(
                "mean_ms",
                Value::Float(self.sum as f64 / 1e6 / self.count as f64),
            );
            for (name, q) in [
                ("p50_ms", 0.5),
                ("p90_ms", 0.9),
                ("p99_ms", 0.99),
                ("p999_ms", 0.999),
            ] {
                if let Some(v) = self.quantile(q) {
                    m.insert(name, ms(v));
                }
            }
        }
        Value::Object(m)
    }

    /// Number of recorded values strictly above `threshold`, at bucket
    /// granularity: a bucket counts as "over" when its midpoint exceeds
    /// the threshold. The SLO burn-rate monitor consumes this, so its
    /// breach counting inherits the documented `1/64` bucket error.
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(idx, _)| Self::bucket_mid(idx) > threshold)
            .map(|(_, &c)| c)
            .sum()
    }
}

/// Thread-ordinal stripes for the global registry. 16 stripes keeps the
/// per-stripe mutexes effectively uncontended at the 64-thread pool cap.
const N_STRIPES: usize = 16;

type Stripe = Mutex<BTreeMap<&'static str, HdrHist>>;

fn stripes() -> &'static [Stripe; N_STRIPES] {
    static STRIPES: OnceLock<[Stripe; N_STRIPES]> = OnceLock::new();
    STRIPES.get_or_init(|| std::array::from_fn(|_| Mutex::new(BTreeMap::new())))
}

/// Key of one tagged histogram family: a base label refined by the
/// scoring-backend and risk-level tags a [`crate::reqctx::ReqCtx`]
/// carries. All components are `&'static str` so recording stays
/// allocation-free — the same constraint the event ring imposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TagKey {
    /// Base family label (e.g. `serve.request`).
    pub label: &'static str,
    /// Scoring-backend tag (`ServeModel::name()`).
    pub backend: &'static str,
    /// Risk-level tag (`RiskLevel::name()`, or `unscored`).
    pub level: &'static str,
}

impl TagKey {
    /// Flattened `label|backend|level` name used in JSON snapshots. `|`
    /// keeps the tags inside a single `.`-separated path segment, so
    /// `obs_diff` still classifies the quantile/count leaves by suffix.
    pub fn flat(&self) -> String {
        format!("{}|{}|{}", self.label, self.backend, self.level)
    }
}

type TagStripe = Mutex<BTreeMap<TagKey, HdrHist>>;

fn tag_stripes() -> &'static [TagStripe; N_STRIPES] {
    static STRIPES: OnceLock<[TagStripe; N_STRIPES]> = OnceLock::new();
    STRIPES.get_or_init(|| std::array::from_fn(|_| Mutex::new(BTreeMap::new())))
}

/// Bumped on every mutation of the stripe registry, so periodic
/// snapshotters (the time-series driver) can skip the merge entirely on
/// ticks where nothing was recorded.
static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Current mutation generation of the stripe registry.
pub fn generation() -> u64 {
    GENERATION.load(std::sync::atomic::Ordering::Acquire)
}

/// Record a nanosecond latency observation for `label` into the calling
/// thread's stripe. Cheap: one uncontended mutex and a map upsert.
pub fn observe_ns(label: &'static str, ns: u64) {
    let stripe = &stripes()[(crate::thread_ord() as usize) % N_STRIPES];
    stripe.lock().entry(label).or_default().record(ns);
    GENERATION.fetch_add(1, std::sync::atomic::Ordering::Release);
}

/// Record a nanosecond observation into a tagged family (per-backend ×
/// per-level shard of `key.label`). Same striping and cost profile as
/// [`observe_ns`].
pub fn observe_tagged(key: TagKey, ns: u64) {
    let stripe = &tag_stripes()[(crate::thread_ord() as usize) % N_STRIPES];
    stripe.lock().entry(key).or_default().record(ns);
    GENERATION.fetch_add(1, std::sync::atomic::Ordering::Release);
}

/// Merge every stripe into one histogram per label.
pub fn merged() -> BTreeMap<&'static str, HdrHist> {
    let mut out: BTreeMap<&'static str, HdrHist> = BTreeMap::new();
    for stripe in stripes().iter() {
        for (label, hist) in stripe.lock().iter() {
            out.entry(label)
                .and_modify(|h| h.merge(hist))
                .or_insert_with(|| hist.clone());
        }
    }
    out
}

/// Fold one shard's tagged families into an accumulator. This is the
/// commutative merge step the tagged-registry proptests pin: folding
/// worker shards in any order yields bit-identical families.
pub fn merge_tagged_into(out: &mut BTreeMap<TagKey, HdrHist>, shard: &BTreeMap<TagKey, HdrHist>) {
    for (key, hist) in shard {
        out.entry(*key)
            .and_modify(|h| h.merge(hist))
            .or_insert_with(|| hist.clone());
    }
}

/// Merge every stripe into one histogram per tagged family.
pub fn merged_tagged() -> BTreeMap<TagKey, HdrHist> {
    let mut out = BTreeMap::new();
    for stripe in tag_stripes().iter() {
        merge_tagged_into(&mut out, &stripe.lock());
    }
    out
}

/// Cumulative `(total, over_threshold)` observation counts for an
/// untagged label across all stripes — the SLO burn-rate monitor's
/// input. Threshold comparison is at bucket granularity
/// ([`HdrHist::count_over`]).
pub fn count_over(label: &str, threshold_ns: u64) -> (u64, u64) {
    let mut total = 0u64;
    let mut over = 0u64;
    for stripe in stripes().iter() {
        if let Some(hist) = stripe.lock().get(label) {
            total += hist.count();
            over += hist.count_over(threshold_ns);
        }
    }
    (total, over)
}

/// JSON summaries of the merged registry — untagged labels first, then
/// tagged families under their flattened `label|backend|level` names —
/// or `Null` when no latencies were recorded.
pub fn snapshot_value() -> Value {
    let merged = merged();
    let tagged = merged_tagged();
    if merged.is_empty() && tagged.is_empty() {
        return Value::Null;
    }
    let mut m = Map::new();
    for (label, hist) in &merged {
        m.insert(*label, hist.summary_ms());
    }
    for (key, hist) in &tagged {
        m.insert(key.flat(), hist.summary_ms());
    }
    Value::Object(m)
}

/// Drop every recorded latency, tagged families included (test
/// isolation, and the serve bins' post-fit reset).
pub fn reset() {
    for stripe in stripes().iter() {
        stripe.lock().clear();
    }
    for stripe in tag_stripes().iter() {
        stripe.lock().clear();
    }
    GENERATION.fetch_add(1, std::sync::atomic::Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        let mut h = HdrHist::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(31));
        // Value 10 sits at rank 11/32.
        assert_eq!(h.quantile(11.0 / 32.0), Some(10));
    }

    #[test]
    fn quantile_error_within_documented_bound() {
        let mut h = HdrHist::new();
        let values: Vec<u64> = (0..10_000u64).map(|i| 1_000 + i * 977).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank] as f64;
            let got = h.quantile(q).unwrap() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(
                rel <= MAX_RELATIVE_ERROR,
                "q{q}: got {got}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut all = HdrHist::new();
        let mut shards: Vec<HdrHist> = (0..4).map(|_| HdrHist::new()).collect();
        for i in 0..5_000u64 {
            let v = (i * 7919) % 1_000_000 + 1;
            all.record(v);
            shards[(i % 4) as usize].record(v);
        }
        let mut ab = HdrHist::new();
        for s in &shards {
            ab.merge(s);
        }
        let mut ba = HdrHist::new();
        for s in shards.iter().rev() {
            ba.merge(s);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(ab.quantile(q), all.quantile(q), "q={q}");
            assert_eq!(ba.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(ab.count(), all.count());
        assert_eq!(ab.sum(), all.sum());
    }

    #[test]
    fn bucket_mid_is_monotone_and_in_range() {
        let mut prev = 0u64;
        for idx in 0..N_BUCKETS {
            let mid = HdrHist::bucket_mid(idx);
            assert!(mid >= prev, "idx {idx}: {mid} < {prev}");
            prev = mid;
        }
        for v in [0u64, 1, 31, 32, 33, 1_000, 1 << 20, u64::MAX / 2] {
            let idx = HdrHist::bucket(v);
            let mid = HdrHist::bucket_mid(idx) as f64;
            let rel = (mid - v as f64).abs() / (v as f64).max(1.0);
            assert!(
                rel <= MAX_RELATIVE_ERROR || v < 32,
                "v={v} mid={mid} rel={rel}"
            );
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Merging per-worker shards in ANY order must yield the
            /// same quantiles as recording every value into a single
            /// histogram: merge adds bucket counts, which is exact, so
            /// the merged quantiles are bucket-identical — and both
            /// stay within the documented `MAX_RELATIVE_ERROR` of the
            /// true sample quantile.
            fn sharded_merge_matches_single_recording(
                samples in collection::vec((1u64..5_000_000, 0usize..8), 1..400),
                rotation in 0usize..8,
            ) {
                let n_shards = 8;
                let mut single = HdrHist::new();
                let mut shards: Vec<HdrHist> =
                    (0..n_shards).map(|_| HdrHist::new()).collect();
                for &(value, worker) in &samples {
                    single.record(value);
                    shards[worker % n_shards].record(value);
                }

                // Merge in an arbitrary rotated order.
                let mut merged = HdrHist::new();
                for i in 0..n_shards {
                    merged.merge(&shards[(i + rotation) % n_shards]);
                }

                prop_assert_eq!(merged.count(), single.count());
                prop_assert_eq!(merged.sum(), single.sum());
                let mut sorted: Vec<u64> =
                    samples.iter().map(|&(v, _)| v).collect();
                sorted.sort_unstable();
                for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    let m = merged.quantile(q);
                    prop_assert_eq!(m, single.quantile(q));
                    // Both stay within the documented bucket bound of
                    // the true sample quantile.
                    let rank = ((q * sorted.len() as f64).ceil() as usize)
                        .max(1)
                        - 1;
                    let exact = sorted[rank] as f64;
                    let got = m.unwrap() as f64;
                    let rel = (got - exact).abs() / exact.max(1.0);
                    prop_assert!(
                        rel <= MAX_RELATIVE_ERROR || exact < 32.0,
                        "q={} got {} exact {} rel {}", q, got, exact, rel
                    );
                }
            }
        }
    }

    #[test]
    fn count_over_matches_bucket_semantics() {
        let mut h = HdrHist::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_over(0), 6);
        // Low values (<32) are exact buckets, so the threshold is sharp.
        assert_eq!(h.count_over(1), 5);
        assert_eq!(h.count_over(10), 4);
        // Above the exact range the comparison is at bucket midpoints:
        // far-away thresholds are unambiguous.
        assert_eq!(h.count_over(5_000), 2);
        assert_eq!(h.count_over(u64::MAX / 2), 0);
        assert_eq!(HdrHist::new().count_over(0), 0);
    }

    /// The global-registry tests below all `reset()` the process-wide
    /// stripes; serialize them so the test harness's parallelism cannot
    /// interleave a reset with another test's assertions.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn tagged_registry_shards_by_key_and_resets() {
        let _guard = REGISTRY_LOCK.lock();
        reset();
        let a = TagKey {
            label: "t.req",
            backend: "gbdt",
            level: "Ideation",
        };
        let b = TagKey {
            label: "t.req",
            backend: "plm-int8",
            level: "Ideation",
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..500u64 {
                        observe_tagged(a, 1_000 + i);
                        observe_tagged(b, 2_000 + i);
                    }
                });
            }
        });
        let folded = merged_tagged();
        assert_eq!(folded.get(&a).map(HdrHist::count), Some(2_000));
        assert_eq!(folded.get(&b).map(HdrHist::count), Some(2_000));
        assert_eq!(a.flat(), "t.req|gbdt|Ideation");
        reset();
        assert!(merged_tagged().is_empty());
    }

    mod tagged_properties {
        use super::super::*;
        use proptest::prelude::*;

        const LABELS: [&str; 2] = ["req", "stage.score"];
        const BACKENDS: [&str; 3] = ["gbdt", "plm-f32", "plm-int8"];
        const LEVELS: [&str; 4] = ["Indicator", "Ideation", "Behavior", "Attempt"];

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// Tagged-family merge is commutative across worker shards:
            /// folding per-worker maps in any rotation yields the exact
            /// counts/sums/quantiles of single-map recording, per key.
            fn tagged_merge_commutes_across_worker_shards(
                samples in collection::vec(
                    (
                        (0usize..2, 0usize..3),
                        (0usize..4, 1u64..5_000_000, 0usize..6),
                    ),
                    1..300,
                ),
                rotation in 0usize..6,
            ) {
                let n_shards = 6;
                let mut single: BTreeMap<TagKey, HdrHist> = BTreeMap::new();
                let mut shards: Vec<BTreeMap<TagKey, HdrHist>> =
                    vec![BTreeMap::new(); n_shards];
                for &((l, b), (lv, value, worker)) in &samples {
                    let key = TagKey {
                        label: LABELS[l],
                        backend: BACKENDS[b],
                        level: LEVELS[lv],
                    };
                    single.entry(key).or_default().record(value);
                    shards[worker % n_shards]
                        .entry(key)
                        .or_default()
                        .record(value);
                }
                let mut folded = BTreeMap::new();
                for i in 0..n_shards {
                    merge_tagged_into(&mut folded, &shards[(i + rotation) % n_shards]);
                }
                prop_assert_eq!(folded.len(), single.len());
                for (key, want) in &single {
                    let got = &folded[key];
                    prop_assert_eq!(got.count(), want.count());
                    prop_assert_eq!(got.sum(), want.sum());
                    for q in [0.0, 0.5, 0.99, 1.0] {
                        prop_assert_eq!(got.quantile(q), want.quantile(q));
                    }
                }
            }
        }
    }

    #[test]
    fn registry_stripes_merge_across_threads() {
        let _guard = REGISTRY_LOCK.lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1_000u64 {
                        observe_ns("stripe.test", 1_000 + i);
                    }
                });
            }
        });
        let folded = merged();
        let h = folded.get("stripe.test").expect("label recorded");
        assert_eq!(h.count(), 8_000);
        reset();
        assert!(!merged().contains_key("stripe.test"));
    }
}
