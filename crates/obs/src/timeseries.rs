//! Periodic time-series snapshots of the continuous-telemetry layer.
//!
//! [`start`] spins up a driver thread that, every `RSD_OBS_TICK_MS`
//! milliseconds, drains the global event ring, folds stage-progress
//! events into cumulative per-stage totals, and appends one NDJSON line
//! to `bench_runs/<scale>/<bin>.series.ndjson`:
//!
//! ```json
//! {"kind":"tick","tick":3,"t_ms":151.2,"window_ms":50.4,
//!  "stages":{"pipeline.shards":{"items":12,"bytes":48211,
//!            "items_per_s":238.1,"bytes_per_s":956430.0}},
//!  "latency":{"pipeline.shard":{"count":12,"p50_ms":3.1,"p90_ms":4.0,
//!             "p99_ms":4.4,"p999_ms":4.4,"max_ms":4.4}},
//!  "alloc":{"live_bytes":104857,"peak_live_bytes":209715},
//!  "ring":{"published":412,"dropped":0}}
//! ```
//!
//! A **stall watchdog** rides the same tick: stages announced via
//! [`crate::stage_register`] that report no progress for
//! `RSD_OBS_STALL_TICKS` consecutive ticks (default 10) emit a
//! `{"kind":"stall",...}` line (and an `obs.stall` NDJSON event) until
//! they move again or call [`crate::stage_finish`].
//!
//! Three request-scoped extensions ride the tick as well:
//!
//! * **exemplars** — the window's K slowest request breakdowns
//!   ([`crate::exemplar::take_window`]) land in the tick line, so the
//!   series names the offending stage, not just the quantile;
//! * **SLO burn** — when `RSD_SLO_P99_MS` arms [`crate::slo`], each
//!   tick feeds the `serve.request` histogram's over-target counts into
//!   the multi-window [`crate::slo::BurnMonitor`]; burning ticks emit a
//!   `{"kind":"slo_burn",...}` line plus an `slo.burn` event and latch
//!   the process degraded;
//! * **live publication** — every tick line is pushed to
//!   [`crate::http::publish_tick`] (with the current stall set), so the
//!   `RSD_OBS_HTTP` endpoint's `/snapshot` and `/health` track the run
//!   without touching driver state.
//!
//! When `RSD_OBS_TRACE=1` the driver also retains drained events and,
//! at [`SeriesGuard::finish`], renders them plus the span tree into a
//! `chrome://tracing` / Perfetto-compatible
//! `bench_runs/<scale>/<bin>.trace.json` (see [`crate::trace_export`]).
//! The guard's drop finishes the driver, so a bench binary just holds it
//! for the duration of the run.

use crate::ring::{self, EventKind, RingEvent};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default tick when only trace export is requested (the ring still
/// needs a consumer).
const TRACE_ONLY_TICK_MS: u64 = 200;
/// Default stall threshold in ticks.
const DEFAULT_STALL_TICKS: u32 = 10;
/// Hard cap on retained trace events (64 bytes each → ≤ 64 MiB).
const MAX_TRACE_EVENTS: usize = 1 << 20;

/// Explicit driver options (tests construct these directly; binaries go
/// through the env-reading [`start`]).
#[derive(Debug, Clone)]
pub struct SeriesOptions {
    /// Snapshot period.
    pub tick: Duration,
    /// Where the NDJSON series goes (`None`: no series file, e.g. a
    /// trace-only run).
    pub series_path: Option<PathBuf>,
    /// Where the Chrome trace goes (`None`: no trace export).
    pub trace_path: Option<PathBuf>,
    /// Consecutive no-progress ticks before a registered stage counts
    /// as stalled.
    pub stall_ticks: u32,
}

fn truthy(var: &str) -> bool {
    std::env::var(var)
        .map(|v| !(v.is_empty() || v == "0" || v == "off"))
        .unwrap_or(false)
}

/// Read `RSD_OBS_TICK_MS` / `RSD_OBS_TRACE` / `RSD_OBS_STALL_TICKS` and
/// start the driver for one bench binary. Returns `None` when neither a
/// tick nor trace export is requested — the continuous layer then stays
/// disarmed and hot paths pay a single atomic load.
///
/// Invalid (unparsable) knob values hard-error naming the knob, matching
/// the `RSD_SCALE` precedent; `""`/`"0"`/`"off"` legitimately disable.
pub fn start(bin: &str, scale: &str) -> Option<SeriesGuard> {
    let tick_ms = crate::knob::optional_positive_env("RSD_OBS_TICK_MS");
    let trace = truthy("RSD_OBS_TRACE");
    if tick_ms.is_none() && !trace {
        return None;
    }
    let dir = PathBuf::from("bench_runs").join(scale);
    let opts = SeriesOptions {
        tick: Duration::from_millis(tick_ms.unwrap_or(TRACE_ONLY_TICK_MS).max(1)),
        series_path: tick_ms.map(|_| dir.join(format!("{bin}.series.ndjson"))),
        trace_path: trace.then(|| dir.join(format!("{bin}.trace.json"))),
        stall_ticks: crate::knob::positive_or_default(
            "RSD_OBS_STALL_TICKS",
            std::env::var("RSD_OBS_STALL_TICKS").ok(),
            u64::from(DEFAULT_STALL_TICKS),
        ) as u32,
    };
    Some(start_with(opts))
}

/// Start the driver with explicit options. Forces the registry on (a
/// tick/trace request must produce data even without `RSD_OBS`) and arms
/// the ring.
pub fn start_with(opts: SeriesOptions) -> SeriesGuard {
    crate::ensure_registry();
    ring::set_armed(true);
    let stop = Arc::new(StopFlag::default());
    let driver_stop = Arc::clone(&stop);
    let driver_opts = opts.clone();
    let handle = std::thread::Builder::new()
        .name("rsd-obs-series".to_string())
        .spawn(move || drive(&driver_opts, &driver_stop))
        .expect("spawn rsd-obs series driver");
    SeriesGuard {
        stop,
        handle: Some(handle),
        series_path: opts.series_path,
        trace_path: opts.trace_path,
    }
}

#[derive(Default)]
struct StopFlag {
    stopped: AtomicBool,
    mutex: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    fn signal(&self) {
        self.stopped.store(true, Ordering::Release);
        *self.mutex.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Wait one tick; returns true when stop was signalled.
    fn wait(&self, tick: Duration) -> bool {
        let guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        if *guard {
            return true;
        }
        let (guard, _timeout) = self
            .cv
            .wait_timeout(guard, tick)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }
}

/// Paths the finished driver wrote (present only when the corresponding
/// export was requested and succeeded).
#[derive(Debug, Default)]
pub struct SeriesOutputs {
    /// The `.series.ndjson` file.
    pub series: Option<PathBuf>,
    /// The `.trace.json` file.
    pub trace: Option<PathBuf>,
}

/// Owns the driver thread. Dropping (or calling
/// [`SeriesGuard::finish`]) stops the driver, writes a final snapshot
/// line, exports the trace, publishes `obs.ring.*` gauges, and disarms
/// the ring.
pub struct SeriesGuard {
    stop: Arc<StopFlag>,
    handle: Option<std::thread::JoinHandle<()>>,
    series_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
}

impl SeriesGuard {
    /// Stop the driver and return what it wrote.
    pub fn finish(mut self) -> SeriesOutputs {
        self.shutdown();
        SeriesOutputs {
            series: self.series_path.take().filter(|p| p.is_file()),
            trace: self.trace_path.take().filter(|p| p.is_file()),
        }
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.signal();
        let _ = handle.join();
        ring::set_armed(false);
        let reg = crate::registry();
        reg.gauge_set("obs.ring.published", ring::global().published() as f64);
        reg.gauge_set("obs.ring.dropped", ring::global().dropped() as f64);
    }
}

impl Drop for SeriesGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-stage state the driver folds ring events into.
#[derive(Debug, Default, Clone)]
struct StageState {
    items: u64,
    bytes: u64,
    prev_items: u64,
    prev_bytes: u64,
    registered: bool,
    finished: bool,
    idle_ticks: u32,
    stalled: bool,
}

struct Driver<'a> {
    opts: &'a SeriesOptions,
    writer: Option<std::io::BufWriter<std::fs::File>>,
    trace: Option<Vec<RingEvent>>,
    trace_truncated: u64,
    stages: BTreeMap<&'static str, StageState>,
    tick_idx: u64,
    started: Instant,
    last_tick: Instant,
    /// Histogram generation the cached latency snapshot was taken at;
    /// ticks where nothing new was recorded reuse the cache instead of
    /// re-merging every stripe.
    hist_gen: Option<u64>,
    hist_cache: Value,
    /// SLO burn-rate monitor, armed by `RSD_SLO_P99_MS`.
    slo: Option<crate::slo::BurnMonitor>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl Driver<'_> {
    fn absorb(&mut self, event: RingEvent) {
        match event.kind {
            EventKind::StageProgress => {
                let s = self.stages.entry(event.label).or_default();
                s.items += event.a;
                s.bytes += event.b;
            }
            EventKind::StageRegister => {
                let s = self.stages.entry(event.label).or_default();
                s.registered = true;
                s.finished = false;
            }
            EventKind::StageFinish => {
                let s = self.stages.entry(event.label).or_default();
                s.finished = true;
                s.stalled = false;
            }
            EventKind::SpanEnd | EventKind::Counter | EventKind::Gauge => {}
        }
        if let Some(buf) = &mut self.trace {
            if buf.len() < MAX_TRACE_EVENTS {
                buf.push(event);
            } else {
                self.trace_truncated += 1;
            }
        }
    }

    fn write_line(&mut self, value: &Value) {
        if let Some(w) = &mut self.writer {
            let _ = writeln!(w, "{}", value.to_json());
        }
    }

    /// Drain the ring, emit one snapshot line, and run the watchdog.
    fn tick(&mut self, kind: &str) {
        let now = Instant::now();
        let window = now.duration_since(self.last_tick);
        self.last_tick = now;
        let ring = ring::global();
        let mut drained = Vec::new();
        ring.drain(|e| drained.push(e));
        for e in drained {
            self.absorb(e);
        }

        let window_s = window.as_secs_f64().max(1e-9);
        let mut stages = Map::new();
        let mut stalls: Vec<&'static str> = Vec::new();
        for (label, s) in self.stages.iter_mut() {
            let d_items = s.items - s.prev_items;
            let d_bytes = s.bytes - s.prev_bytes;
            s.prev_items = s.items;
            s.prev_bytes = s.bytes;
            if s.registered && !s.finished {
                if d_items == 0 && d_bytes == 0 {
                    s.idle_ticks += 1;
                    if s.idle_ticks >= self.opts.stall_ticks && !s.stalled {
                        s.stalled = true;
                        stalls.push(label);
                    }
                } else {
                    s.idle_ticks = 0;
                    s.stalled = false;
                }
            }
            let mut m = Map::new();
            m.insert("items", Value::Int(i128::from(s.items)));
            m.insert("bytes", Value::Int(i128::from(s.bytes)));
            m.insert("items_per_s", Value::Float(d_items as f64 / window_s));
            m.insert("bytes_per_s", Value::Float(d_bytes as f64 / window_s));
            stages.insert(*label, Value::Object(m));
        }

        let mut line = Map::new();
        line.insert("kind", Value::String(kind.to_string()));
        line.insert("tick", Value::Int(self.tick_idx as i128));
        line.insert("t_ms", Value::Float(ms(self.started.elapsed())));
        line.insert("window_ms", Value::Float(ms(window)));
        if !stages.is_empty() {
            line.insert("stages", Value::Object(stages));
        }
        let gen = crate::hist::generation();
        if self.hist_gen != Some(gen) {
            self.hist_cache = crate::hist::snapshot_value();
            self.hist_gen = Some(gen);
        }
        if self.hist_cache != Value::Null {
            line.insert("latency", self.hist_cache.clone());
        }
        // This window's slowest request breakdowns, slowest first.
        let exemplars = crate::exemplar::take_window();
        if !exemplars.is_empty() {
            line.insert("exemplars", crate::exemplar::to_values(&exemplars));
        }
        // SLO burn evaluation over the request histogram's cumulative
        // (total, over-target) counts at this tick.
        let mut burning: Option<crate::slo::BurnSample> = None;
        if let Some(monitor) = &mut self.slo {
            let cfg = monitor.config();
            let (total, bad) =
                crate::hist::count_over(crate::reqctx::REQUEST_FAMILY, cfg.target_ns());
            let t_ms_now = self.started.elapsed().as_millis() as u64;
            let sample = monitor.observe(t_ms_now, total, bad);
            if sample.burning {
                crate::slo::record_burn();
                burning = Some(sample);
            }
            let mut m = Map::new();
            m.insert("target_p99_ms", Value::Float(cfg.target_p99_ms));
            m.insert("budget", Value::Float(cfg.budget));
            m.insert("fast_burn", Value::Float(sample.fast_burn));
            m.insert("slow_burn", Value::Float(sample.slow_burn));
            m.insert("burn_events", Value::Int(crate::slo::burn_events() as i128));
            m.insert("degraded", Value::Bool(crate::slo::degraded()));
            line.insert("slo", Value::Object(m));
        }
        // Health verdict: a latched SLO burn or any currently-stalled
        // stage degrades the run (mirrored by the /health endpoint).
        let stalled_now: Vec<String> = self
            .stages
            .iter()
            .filter(|(_, s)| s.stalled)
            .map(|(label, _)| label.to_string())
            .collect();
        let degraded = crate::slo::degraded() || !stalled_now.is_empty();
        let mut health = Map::new();
        health.insert(
            "status",
            Value::String(if degraded { "degraded" } else { "ok" }.to_string()),
        );
        line.insert("health", Value::Object(health));
        if crate::alloc::active() {
            let mut a = Map::new();
            a.insert(
                "live_bytes",
                Value::Int(i128::from(crate::alloc::live_bytes())),
            );
            a.insert(
                "peak_live_bytes",
                Value::Int(i128::from(crate::alloc::peak_live_bytes())),
            );
            line.insert("alloc", Value::Object(a));
        }
        let mut r = Map::new();
        r.insert("published", Value::Int(i128::from(ring.published())));
        r.insert("dropped", Value::Int(i128::from(ring.dropped())));
        line.insert("ring", Value::Object(r));
        let line = Value::Object(line);
        self.write_line(&line);
        // Mirror the tick to the live endpoint (cheap: one string and
        // two mutex stores; the endpoint serves them without touching
        // driver state).
        crate::http::publish_tick(line.to_json());
        crate::http::set_stalled(stalled_now);

        if let Some(sample) = burning {
            let cfg = self.slo.as_ref().expect("burning implies monitor").config();
            let mut m = Map::new();
            m.insert("kind", Value::String("slo_burn".to_string()));
            m.insert("t_ms", Value::Float(ms(self.started.elapsed())));
            m.insert("target_p99_ms", Value::Float(cfg.target_p99_ms));
            m.insert("budget", Value::Float(cfg.budget));
            m.insert("fast_burn", Value::Float(sample.fast_burn));
            m.insert("slow_burn", Value::Float(sample.slow_burn));
            self.write_line(&Value::Object(m));
            crate::event(
                "slo.burn",
                &[
                    ("fast_burn", Value::Float(sample.fast_burn)),
                    ("slow_burn", Value::Float(sample.slow_burn)),
                    ("target_p99_ms", Value::Float(cfg.target_p99_ms)),
                ],
            );
        }

        for label in stalls {
            let idle = self.stages[label].idle_ticks;
            let mut m = Map::new();
            m.insert("kind", Value::String("stall".to_string()));
            m.insert("stage", Value::String(label.to_string()));
            m.insert("idle_ticks", Value::Int(i128::from(idle)));
            m.insert("t_ms", Value::Float(ms(self.started.elapsed())));
            self.write_line(&Value::Object(m));
            crate::event(
                "obs.stall",
                &[
                    ("stage", Value::String(label.to_string())),
                    ("idle_ticks", Value::Int(i128::from(idle))),
                ],
            );
        }

        if let Some(w) = &mut self.writer {
            let _ = w.flush();
        }
        self.tick_idx += 1;
    }
}

fn drive(opts: &SeriesOptions, stop: &StopFlag) {
    let writer = opts.series_path.as_ref().and_then(|path| {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .ok()
    });
    let now = Instant::now();
    let mut driver = Driver {
        opts,
        writer,
        trace: opts.trace_path.is_some().then(Vec::new),
        trace_truncated: 0,
        stages: BTreeMap::new(),
        tick_idx: 0,
        started: now,
        last_tick: now,
        hist_gen: None,
        hist_cache: Value::Null,
        slo: crate::slo::config_from_env().map(crate::slo::BurnMonitor::new),
    };
    loop {
        let stopped = stop.wait(opts.tick);
        if stopped {
            break;
        }
        driver.tick("tick");
    }
    driver.tick("final");
    if let (Some(path), Some(events)) = (&opts.trace_path, &driver.trace) {
        if driver.trace_truncated > 0 {
            crate::event(
                "obs.trace.truncated",
                &[("events", Value::Int(i128::from(driver.trace_truncated)))],
            );
        }
        let tree = crate::registry().tree();
        if let Err(e) = crate::trace_export::write_trace_to(path, events, &tree) {
            eprintln!("rsd-obs: cannot write trace {}: {e}", path.display());
        }
    }
}

/// Run-wide exemplar list kept by [`summarize_series`].
const SUMMARY_EXEMPLARS: usize = 8;

/// Summarize a `.series.ndjson` stream into a report-shaped JSON object
/// (`obs_diff` accepts series files via this): the last `tick`/`final`
/// snapshot's stages, latency quantiles, ring counters, and health,
/// plus tick/stall/burn totals, the stable subset of the SLO state
/// (targets and the burn count — instantaneous burn rates are
/// timing-dependent and stay in the raw lines), and the run's slowest
/// exemplars across all ticks. Malformed lines are a hard error.
pub fn summarize_series(text: &str) -> Result<Value, String> {
    let mut last: Option<Value> = None;
    let mut ticks = 0u64;
    let mut stalls = 0u64;
    let mut burns = 0u64;
    let mut exemplars: Vec<Value> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("series line {}: invalid JSON: {e}", idx + 1))?;
        match v.get("kind").and_then(Value::as_str) {
            Some("tick") | Some("final") => {
                ticks += 1;
                if let Some(exs) = v.get("exemplars").and_then(Value::as_array) {
                    exemplars.extend(exs.iter().cloned());
                }
                last = Some(v);
            }
            Some("stall") => stalls += 1,
            Some("slo_burn") => burns += 1,
            Some(other) => return Err(format!("series line {}: unknown kind {other:?}", idx + 1)),
            None => return Err(format!("series line {}: missing kind", idx + 1)),
        }
    }
    let last = last.ok_or_else(|| "series contains no snapshot lines".to_string())?;
    let mut series = Map::new();
    series.insert("ticks", Value::Int(i128::from(ticks)));
    series.insert("stall_events", Value::Int(i128::from(stalls)));
    if burns > 0 {
        series.insert("burn_lines", Value::Int(i128::from(burns)));
    }
    for key in ["stages", "latency", "ring", "alloc", "health"] {
        if let Some(v) = last.get(key) {
            series.insert(key, v.clone());
        }
    }
    if let Some(slo) = last.get("slo").and_then(Value::as_object) {
        let mut stable = Map::new();
        for key in ["target_p99_ms", "budget", "burn_events", "degraded"] {
            if let Some(v) = slo.get(key) {
                stable.insert(key, v.clone());
            }
        }
        series.insert("slo", Value::Object(stable));
    }
    if !exemplars.is_empty() {
        // Keep the run's slowest across every window, slowest first.
        exemplars.sort_by(|a, b| {
            let ms = |v: &Value| v.get("total_ms").and_then(Value::as_f64).unwrap_or(0.0);
            ms(b)
                .partial_cmp(&ms(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        exemplars.truncate(SUMMARY_EXEMPLARS);
        series.insert("exemplars", Value::Array(exemplars));
    }
    let mut out = Map::new();
    out.insert("series", Value::Object(series));
    Ok(Value::Object(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rsd-obs-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn driver_writes_wellformed_series_and_summary_parses() {
        let series = temp_path("series.ndjson");
        let trace = temp_path("trace.json");
        let records = crate::capture(|| {
            let guard = start_with(SeriesOptions {
                tick: Duration::from_millis(5),
                series_path: Some(series.clone()),
                trace_path: Some(trace.clone()),
                stall_ticks: 3,
            });
            crate::stage_register("ts.stage");
            for _ in 0..10 {
                let _s = crate::Span::enter("ts.span");
                crate::stage_progress("ts.stage", 3, 128);
                std::thread::sleep(Duration::from_millis(2));
            }
            crate::stage_finish("ts.stage");
            std::thread::sleep(Duration::from_millis(20));
            let out = guard.finish();
            assert_eq!(out.series.as_deref(), Some(series.as_path()));
            assert_eq!(out.trace.as_deref(), Some(trace.as_path()));
        });
        // Ring gauges published at finish.
        let _ = records;
        let text = std::fs::read_to_string(&series).expect("series file");
        assert!(!text.trim().is_empty());
        let summary = summarize_series(&text).expect("well-formed series");
        let s = &summary["series"];
        assert_eq!(s["stages"]["ts.stage"]["items"], 30u32);
        assert_eq!(s["stages"]["ts.stage"]["bytes"], 1280u32);
        assert_eq!(s["ring"]["dropped"], 0u32);
        assert!(s["latency"]["ts.span"]["p99_ms"].as_f64().is_some());
        assert!(s["latency"]["ts.span"]["p999_ms"].as_f64().is_some());
        // The trace parses as JSON and contains span events.
        let trace_text = std::fs::read_to_string(&trace).expect("trace file");
        let parsed: Value = serde_json::from_str(&trace_text).expect("trace parses");
        assert!(parsed["traceEvents"].as_array().is_some());
        let _ = std::fs::remove_file(&series);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn stall_watchdog_fires_for_idle_registered_stage() {
        let series = temp_path("stall.ndjson");
        crate::capture(|| {
            let guard = start_with(SeriesOptions {
                tick: Duration::from_millis(2),
                series_path: Some(series.clone()),
                trace_path: None,
                stall_ticks: 2,
            });
            crate::stage_register("ts.stuck");
            crate::stage_progress("ts.stuck", 1, 0);
            std::thread::sleep(Duration::from_millis(40));
            drop(guard);
        });
        let text = std::fs::read_to_string(&series).expect("series file");
        let stall_lines: Vec<&str> = text.lines().filter(|l| l.contains("\"stall\"")).collect();
        assert!(
            !stall_lines.is_empty(),
            "expected a stall event in:\n{text}"
        );
        // A stalled stage reports the stall once, not every tick.
        assert_eq!(stall_lines.len(), 1, "stall repeated:\n{text}");
        let _ = std::fs::remove_file(&series);
    }

    #[test]
    fn summarize_rejects_malformed_lines() {
        assert!(summarize_series("not json\n").is_err());
        assert!(summarize_series("{\"kind\":\"mystery\"}\n").is_err());
        assert!(summarize_series("").is_err());
        let ok = summarize_series(
            "{\"kind\":\"tick\",\"tick\":0,\"ring\":{\"published\":1,\"dropped\":0}}\n",
        )
        .unwrap();
        assert_eq!(ok["series"]["ticks"], 1u32);
    }

    #[test]
    fn summarize_carries_slo_health_and_run_exemplars() {
        let text = concat!(
            r#"{"kind":"tick","tick":0,"exemplars":[{"trace":1,"total_ms":5.0},{"trace":2,"total_ms":9.0}],"#,
            r#""slo":{"target_p99_ms":250.0,"budget":0.05,"fast_burn":0.2,"slow_burn":0.1,"burn_events":0,"degraded":false},"#,
            r#""health":{"status":"ok"},"ring":{"published":4,"dropped":0}}"#,
            "\n",
            r#"{"kind":"slo_burn","t_ms":120.0,"target_p99_ms":250.0,"budget":0.05,"fast_burn":2.0,"slow_burn":1.5}"#,
            "\n",
            r#"{"kind":"final","tick":1,"exemplars":[{"trace":3,"total_ms":7.0}],"#,
            r#""slo":{"target_p99_ms":250.0,"budget":0.05,"fast_burn":2.0,"slow_burn":1.5,"burn_events":1,"degraded":true},"#,
            r#""health":{"status":"degraded"},"ring":{"published":9,"dropped":0}}"#,
            "\n",
        );
        let s = summarize_series(text).expect("well-formed series");
        let s = &s["series"];
        assert_eq!(s["ticks"], 2u32);
        assert_eq!(s["burn_lines"], 1u32);
        assert_eq!(s["health"]["status"].as_str(), Some("degraded"));
        assert_eq!(s["slo"]["burn_events"], 1u32);
        assert_eq!(s["slo"]["degraded"], true);
        // Instantaneous burn rates are timing noise: not summarized.
        assert!(s["slo"]["fast_burn"].is_null());
        // Exemplars accumulate across ticks, slowest first.
        let exs = s["exemplars"].as_array().expect("exemplars");
        assert_eq!(exs.len(), 3);
        assert_eq!(exs[0]["trace"], 2u32);
        assert_eq!(exs[1]["trace"], 3u32);
        assert_eq!(exs[2]["trace"], 1u32);
    }
}
