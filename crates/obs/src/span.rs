//! Hierarchical RAII span timers.
//!
//! Each thread keeps a stack of open frames. `Span::enter("stage")`
//! pushes a frame; dropping the guard pops it and records:
//!
//! * the flat per-label aggregate (count / total / max / depth) that
//!   PR 1 reports carried, unchanged;
//! * a **tree** entry keyed by the full label stack (`a;b;c`, the
//!   collapsed-stack convention), with *total* time, *self* time (total
//!   minus the time spent inside child spans), and the allocation delta
//!   observed across the span (see [`crate::alloc`]);
//! * an NDJSON `span` record carrying `ms`, `self_ms`, `depth`,
//!   `parent`, and `alloc_bytes` when a sink is active.
//!
//! The stack is panic-safe: guards drop during unwinding in LIFO order,
//! and the pop path defensively truncates any deeper frames a leaked
//! guard left behind, so a panicking stage cannot corrupt depth or
//! parent accounting for subsequent spans on the thread.
//!
//! Cross-thread parenting: a pool worker executes closures submitted
//! from a thread with its own open spans. [`current_context`] captures
//! that thread's label stack cheaply and [`with_context`] replays it as
//! *phantom frames* (path prefix only, no timing) around the worker's
//! execution, so worker spans land under the submitting span in the
//! tree. `rsd-par` does this automatically at task boundaries.

use std::cell::RefCell;
use std::time::Instant;

/// One open span (or phantom context frame) on a thread's stack.
struct Frame {
    label: &'static str,
    /// Nanoseconds accumulated by completed child spans.
    child_ns: u64,
    /// Bytes allocated across completed child spans.
    child_alloc: u64,
}

thread_local! {
    /// This thread's stack of open frames, innermost last.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// A running span. Dropping it records the measurement. When telemetry
/// is disabled this is an inert zero-field guard: no clock read, no
/// allocation, no lock.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    state: Option<Running>,
}

struct Running {
    started: Instant,
    /// Index of this span's frame in the thread-local stack.
    index: usize,
    /// Monotonic allocation counter at entry (0 when no counting
    /// allocator is installed).
    alloc_start: u64,
}

impl Span {
    /// Start a span if telemetry is enabled, otherwise return a no-op
    /// guard. The disabled path is one atomic load and a branch.
    pub fn enter(label: &'static str) -> Span {
        if !crate::enabled() {
            return Span { state: None };
        }
        let index = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(Frame {
                label,
                child_ns: 0,
                child_alloc: 0,
            });
            stack.len() - 1
        });
        Span {
            state: Some(Running {
                started: Instant::now(),
                index,
                alloc_start: crate::alloc::allocated_bytes(),
            }),
        }
    }

    /// Nesting depth of this span (`None` for a disabled no-op guard).
    /// Phantom context frames count toward depth, so a worker span's
    /// depth matches its position in the cross-thread tree.
    pub fn depth(&self) -> Option<u32> {
        self.state.as_ref().map(|r| r.index as u32)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(running) = self.state.take() else {
            return;
        };
        let elapsed = running.started.elapsed();
        let alloc_total = crate::alloc::allocated_bytes().saturating_sub(running.alloc_start);
        let popped = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.len() <= running.index {
                // A context guard already truncated past us (a leaked
                // guard outlived its scope); nothing left to record.
                return None;
            }
            // LIFO discipline means this frame is the innermost one, but
            // a `mem::forget`-leaked inner guard would leave deeper
            // frames — drop them so accounting stays sound.
            let frame = stack.swap_remove(running.index);
            stack.truncate(running.index);
            let path = {
                let mut p = String::with_capacity(16 * (running.index + 1));
                for f in stack.iter() {
                    p.push_str(f.label);
                    p.push(';');
                }
                p.push_str(frame.label);
                p
            };
            let parent = stack.last_mut().map(|parent| {
                parent.child_ns += elapsed.as_nanos() as u64;
                parent.child_alloc += alloc_total;
                parent.label
            });
            Some((frame, path, parent))
        });
        let Some((frame, path, parent)) = popped else {
            return;
        };
        let self_ns = (elapsed.as_nanos() as u64).saturating_sub(frame.child_ns);
        let alloc_self = alloc_total.saturating_sub(frame.child_alloc);
        crate::finish_span(crate::SpanRecord {
            label: frame.label,
            parent,
            path,
            elapsed,
            self_ns,
            depth: running.index as u32,
            alloc_total,
            alloc_self,
        });
    }
}

/// A snapshot of a thread's open-span labels, cheap to clone and send to
/// another thread. Empty when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct SpanContext {
    labels: Vec<&'static str>,
}

impl SpanContext {
    /// Whether there is anything to propagate.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Capture the calling thread's current span stack as a [`SpanContext`].
/// Returns an empty context (no allocation) when telemetry is off.
pub fn current_context() -> SpanContext {
    if !crate::enabled() {
        return SpanContext::default();
    }
    SpanContext {
        labels: STACK.with(|s| s.borrow().iter().map(|f| f.label).collect()),
    }
}

/// Run `f` with `ctx`'s labels installed as phantom parent frames, so
/// spans opened inside `f` parent under the capturing thread's stack.
/// Phantom frames contribute path and depth but record no timing of
/// their own. The guard restores the stack even if `f` panics.
pub fn with_context<T>(ctx: &SpanContext, f: impl FnOnce() -> T) -> T {
    if ctx.is_empty() || !crate::enabled() {
        return f();
    }
    let restore = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let restore = stack.len();
        for label in &ctx.labels {
            stack.push(Frame {
                label,
                child_ns: 0,
                child_alloc: 0,
            });
        }
        restore
    });
    struct Guard {
        restore: usize,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            STACK.with(|s| s.borrow_mut().truncate(self.restore));
        }
    }
    let _guard = Guard { restore };
    f()
}
