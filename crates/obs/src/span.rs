//! RAII span timers. `Span::enter("stage.name")` returns a guard; on
//! drop the elapsed wall-clock is folded into the registry's per-label
//! aggregate and (when a sink is active) emitted as an NDJSON record.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Current nesting depth on this thread (0 = top level).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A running span. Dropping it records the measurement. When telemetry
/// is disabled this is an inert zero-field guard: no clock read, no
/// allocation, no lock.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    state: Option<Running>,
}

struct Running {
    label: &'static str,
    started: Instant,
    depth: u32,
}

impl Span {
    /// Start a span if telemetry is enabled, otherwise return a no-op
    /// guard. The disabled path is one atomic load and a branch.
    pub fn enter(label: &'static str) -> Span {
        if !crate::enabled() {
            return Span { state: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span {
            state: Some(Running {
                label,
                started: Instant::now(),
                depth,
            }),
        }
    }

    /// Nesting depth of this span (`None` for a disabled no-op guard).
    pub fn depth(&self) -> Option<u32> {
        self.state.as_ref().map(|r| r.depth)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(running) = self.state.take() else {
            return;
        };
        let elapsed = running.started.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::finish_span(running.label, elapsed, running.depth);
    }
}
