//! GBDT determinism across thread counts: tree growing, boosting, and
//! prediction must be byte-identical whether they run serially, on a
//! 1-thread pool, or on a 4-thread pool.

use rsd_common::rng::stream_rng;
use rsd_gbdt::tree::TreeConfig;
use rsd_gbdt::{BinnedMatrix, Booster, BoosterConfig, Tree};

use rand::Rng;

fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = stream_rng(seed, "gbdt.par.toy");
    (0..n)
        .map(|_| {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            let noise: f32 = rng.gen_range(-1.0..1.0);
            let label = if x > 0.2 {
                0
            } else if y > 0.0 {
                1
            } else {
                2
            };
            (vec![x, y, noise], label)
        })
        .unzip()
}

#[test]
fn tree_fit_identical_across_thread_counts() {
    let (rows, labels) = toy(300, 1);
    let data = BinnedMatrix::fit(rows, 64).unwrap();
    let grad: Vec<f32> = labels
        .iter()
        .map(|&l| if l == 0 { -1.0 } else { 1.0 })
        .collect();
    let hess = vec![1.0f32; labels.len()];
    let idx: Vec<usize> = (0..labels.len()).collect();
    let feats = [0usize, 1, 2];
    let fit = || {
        Tree::fit(
            &data,
            &grad,
            &hess,
            &idx,
            &feats,
            &TreeConfig::default(),
            0.3,
        )
    };
    let serial = rsd_par::run_serial(fit);
    let one = rsd_par::with_local_pool(1, fit);
    let four = rsd_par::with_local_pool(4, fit);
    let json = |t: &Tree| serde_json::to_string(t).unwrap();
    assert_eq!(json(&serial), json(&one));
    assert_eq!(json(&serial), json(&four));
}

#[test]
fn booster_fit_identical_across_thread_counts() {
    let (rows, labels) = toy(250, 2);
    let (vrows, vlabels) = toy(80, 3);
    let train = BinnedMatrix::fit(rows, 64).unwrap();
    let valid = train.transform(vrows).unwrap();
    let cfg = BoosterConfig {
        n_classes: 3,
        n_rounds: 12,
        early_stopping: 3,
        seed: 7,
        ..Default::default()
    };
    let fit = || {
        let b = Booster::fit(&train, &labels, Some((&valid, &vlabels)), cfg.clone()).unwrap();
        let loss = b.log_loss(&valid, &vlabels).unwrap();
        (b.n_rounds(), b.predict(&valid), loss.to_bits())
    };
    let serial = rsd_par::run_serial(fit);
    let one = rsd_par::with_local_pool(1, fit);
    let four = rsd_par::with_local_pool(4, fit);
    assert_eq!(serial, one);
    assert_eq!(serial, four);
}
