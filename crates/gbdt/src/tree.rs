//! Single regression trees grown greedily on gradient histograms.
//!
//! XGBoost's split objective: for a node with gradient sum `G` and hessian
//! sum `H`, the gain of a split into (L, R) is
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! and the leaf weight is `−G/(H+λ)` (times shrinkage, applied by the
//! booster).

use serde::{Deserialize, Serialize};

use crate::data::BinnedMatrix;

/// Tree-growing hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f32,
    /// Minimum gain γ to accept a split.
    pub gamma: f32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// A tree node (flat arena representation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: go left when `value ≤ threshold`.
    Split {
        /// Feature index.
        feature: usize,
        /// Raw-value threshold.
        threshold: f32,
        /// Gain realized by this split (for importance).
        gain: f32,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf with an output weight.
    Leaf {
        /// Leaf weight (already includes shrinkage).
        weight: f32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    /// Arena of nodes; root at index 0.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Grow a tree on `(grad, hess)` over the sample subset `rows` of
    /// `data`, considering only `features`. `shrinkage` scales leaf
    /// weights.
    pub fn fit(
        data: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        features: &[usize],
        cfg: &TreeConfig,
        shrinkage: f32,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.nodes.push(Node::Leaf { weight: 0.0 });
        tree.grow(data, grad, hess, rows, features, cfg, shrinkage, 0, 0);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        data: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        features: &[usize],
        cfg: &TreeConfig,
        shrinkage: f32,
        node: usize,
        depth: usize,
    ) {
        // Gather the node's gradients once: the per-feature histogram loop
        // then streams two dense arrays instead of re-chasing `grad[i]`
        // through the row index for every feature.
        let g: Vec<f32> = rows.iter().map(|&i| grad[i]).collect();
        let h: Vec<f32> = rows.iter().map(|&i| hess[i]).collect();
        let g_total: f32 = g.iter().sum();
        let h_total: f32 = h.iter().sum();
        let leaf_weight = -g_total / (h_total + cfg.lambda) * shrinkage;

        if depth >= cfg.max_depth || rows.len() < 2 {
            self.nodes[node] = Node::Leaf {
                weight: leaf_weight,
            };
            return;
        }

        // Per-feature split search runs in parallel (each candidate slot
        // is written by exactly one chunk); the winner is then reduced
        // serially in `features` order with a strict `>`, which preserves
        // the serial tie-break (first feature, first bin wins).
        let parent_score = g_total * g_total / (h_total + cfg.lambda);
        // Kernel span only under RSD_OBS_PROFILE: this runs once per tree
        // node, which would swamp ordinary telemetry.
        let _split_span =
            rsd_obs::profile_enabled().then(|| rsd_obs::Span::enter("gbdt.split_search"));
        let mut candidates: Vec<Option<(f32, u16)>> = vec![None; features.len()];
        // Enough features per chunk to amortize dispatch on shallow nodes;
        // a pure function of node size, never of thread count.
        let feat_grain = (4096 / rows.len().max(1)).max(1);
        rsd_par::parallel_chunks_mut(&mut candidates, feat_grain, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let f = features[start + off];
                *slot = Tree::best_split_for_feature(
                    data,
                    f,
                    rows,
                    &g,
                    &h,
                    g_total,
                    h_total,
                    parent_score,
                    cfg,
                );
            }
        });
        let mut best: Option<(f32, usize, u16)> = None; // (gain, feature, bin)
        for (pos, cand) in candidates.into_iter().enumerate() {
            if let Some((gain, b)) = cand {
                if best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, features[pos], b));
                }
            }
        }

        let Some((gain, feature, bin)) = best else {
            self.nodes[node] = Node::Leaf {
                weight: leaf_weight,
            };
            return;
        };

        let threshold = data.cuts.cuts[feature][bin as usize];
        let feature_bins = data.feature_bins(feature);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&i| u16::from(feature_bins[i]) <= bin);

        let left = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes[node] = Node::Split {
            feature,
            threshold,
            gain,
            left,
            right,
        };
        self.grow(
            data,
            grad,
            hess,
            &left_rows,
            features,
            cfg,
            shrinkage,
            left,
            depth + 1,
        );
        self.grow(
            data,
            grad,
            hess,
            &right_rows,
            features,
            cfg,
            shrinkage,
            right,
            depth + 1,
        );
    }

    /// Best `(gain, bin)` split for one feature, or `None` when no bin
    /// clears the gain/γ/min-child constraints. Histogram accumulation and
    /// the bin scan run in `rows` order, exactly as the old serial loop.
    #[allow(clippy::too_many_arguments)]
    fn best_split_for_feature(
        data: &BinnedMatrix,
        f: usize,
        rows: &[usize],
        g: &[f32],
        h: &[f32],
        g_total: f32,
        h_total: f32,
        parent_score: f32,
        cfg: &TreeConfig,
    ) -> Option<(f32, u16)> {
        let n_bins = data.cuts.n_bins(f);
        if n_bins < 2 {
            return None;
        }
        let feature_bins = data.feature_bins(f);
        // Interleaved (g, h) pairs: one cache line per bin update instead
        // of two. Addition order per bin is unchanged, so gains (and
        // therefore the grown tree) are bit-identical to split arrays.
        let mut hist = vec![[0.0f32; 2]; n_bins];
        let len = rows.len().min(g.len()).min(h.len());
        let (rows, g, h) = (&rows[..len], &g[..len], &h[..len]);
        let top = n_bins - 1;
        // `.min(top)` is a no-op (bins are < n_bins by construction) that
        // lets the compiler drop the per-row bounds check on `hist`; the
        // 4-way unroll overlaps the gather loads. Updates stay in row
        // order, so per-bin sums are bit-identical to the naive loop.
        let mut j = 0;
        while j + 4 <= len {
            for dj in 0..4 {
                let b = (feature_bins[rows[j + dj]] as usize).min(top);
                let cell = &mut hist[b];
                cell[0] += g[j + dj];
                cell[1] += h[j + dj];
            }
            j += 4;
        }
        while j < len {
            let cell = &mut hist[(feature_bins[rows[j]] as usize).min(top)];
            cell[0] += g[j];
            cell[1] += h[j];
            j += 1;
        }
        let mut best: Option<(f32, u16)> = None;
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        for (b, cell) in hist.iter().enumerate().take(n_bins - 1) {
            gl += cell[0];
            hl += cell[1];
            let gr = g_total - gl;
            let hr = h_total - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, b as u16));
            }
        }
        best
    }

    /// Predict one raw feature row.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Accumulate per-feature gain into `importance`.
    pub fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importance[*feature] += f64::from(*gain);
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A step function y = 1 if x > 5 else −1, perfectly splittable.
    fn step_data() -> (BinnedMatrix, Vec<f32>, Vec<f32>) {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 0.0]).collect();
        let data = BinnedMatrix::fit(rows, 32).unwrap();
        // Squared loss on residuals: grad = pred − y = −y at pred=0, hess = 1.
        let grad: Vec<f32> = (0..20).map(|i| if i > 5 { -1.0 } else { 1.0 }).collect();
        let hess = vec![1.0; 20];
        (data, grad, hess)
    }

    #[test]
    fn finds_the_obvious_split() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0, 1],
            &TreeConfig::default(),
            1.0,
        );
        // Root must split on feature 0 near 5.5.
        match &tree.nodes[0] {
            Node::Split {
                feature, threshold, ..
            } => {
                assert_eq!(*feature, 0);
                assert!((*threshold - 5.5).abs() < 1.0, "threshold {threshold}");
            }
            Node::Leaf { .. } => panic!("root must split"),
        }
        // Predictions approach ±1 (λ=1 shrinks slightly).
        assert!(tree.predict_row(&[0.0, 0.0]) < -0.5);
        assert!(tree.predict_row(&[10.0, 0.0]) > 0.5);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            gamma: 1e9,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.n_leaves(), 1, "huge gamma must prune everything");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            min_child_weight: 100.0,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn shrinkage_scales_leaves() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let full = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0],
            &TreeConfig::default(),
            1.0,
        );
        let half = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0],
            &TreeConfig::default(),
            0.5,
        );
        let p_full = full.predict_row(&[10.0]);
        let p_half = half.predict_row(&[10.0]);
        assert!((p_half - p_full * 0.5).abs() < 1e-6);
    }

    #[test]
    fn importance_lands_on_informative_feature() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0, 1],
            &TreeConfig::default(),
            1.0,
        );
        let mut imp = vec![0.0f64; 2];
        tree.accumulate_importance(&mut imp);
        assert!(imp[0] > 0.0);
        assert_eq!(imp[1], 0.0, "constant feature can't gain");
    }

    #[test]
    fn constrained_feature_set_respected() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        // Only the constant feature is allowed → no split possible.
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[1],
            &TreeConfig::default(),
            1.0,
        );
        assert_eq!(tree.n_leaves(), 1);
    }
}
