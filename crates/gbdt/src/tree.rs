//! Single regression trees grown greedily on gradient histograms.
//!
//! XGBoost's split objective: for a node with gradient sum `G` and hessian
//! sum `H`, the gain of a split into (L, R) is
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! and the leaf weight is `−G/(H+λ)` (times shrinkage, applied by the
//! booster).

use serde::{Deserialize, Serialize};

use crate::data::BinnedMatrix;

/// Tree-growing hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f32,
    /// Minimum gain γ to accept a split.
    pub gamma: f32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// A tree node (flat arena representation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: go left when `value ≤ threshold`.
    Split {
        /// Feature index.
        feature: usize,
        /// Raw-value threshold.
        threshold: f32,
        /// Gain realized by this split (for importance).
        gain: f32,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf with an output weight.
    Leaf {
        /// Leaf weight (already includes shrinkage).
        weight: f32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    /// Arena of nodes; root at index 0.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Grow a tree on `(grad, hess)` over the sample subset `rows` of
    /// `data`, considering only `features`. `shrinkage` scales leaf
    /// weights.
    pub fn fit(
        data: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        features: &[usize],
        cfg: &TreeConfig,
        shrinkage: f32,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.nodes.push(Node::Leaf { weight: 0.0 });
        tree.grow(data, grad, hess, rows, features, cfg, shrinkage, 0, 0);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        data: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        features: &[usize],
        cfg: &TreeConfig,
        shrinkage: f32,
        node: usize,
        depth: usize,
    ) {
        let g_total: f32 = rows.iter().map(|&i| grad[i]).sum();
        let h_total: f32 = rows.iter().map(|&i| hess[i]).sum();
        let leaf_weight = -g_total / (h_total + cfg.lambda) * shrinkage;

        if depth >= cfg.max_depth || rows.len() < 2 {
            self.nodes[node] = Node::Leaf {
                weight: leaf_weight,
            };
            return;
        }

        // Find the best split across candidate features.
        let parent_score = g_total * g_total / (h_total + cfg.lambda);
        let mut best: Option<(f32, usize, u16)> = None; // (gain, feature, bin)
        for &f in features {
            let n_bins = data.cuts.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            let mut hist_g = vec![0.0f32; n_bins];
            let mut hist_h = vec![0.0f32; n_bins];
            for &i in rows {
                let b = data.bins[i][f] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += hess[i];
            }
            let mut gl = 0.0f32;
            let mut hl = 0.0f32;
            for b in 0..n_bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let gr = g_total - gl;
                let hr = h_total - hl;
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                    - cfg.gamma;
                if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b as u16));
                }
            }
        }

        let Some((gain, feature, bin)) = best else {
            self.nodes[node] = Node::Leaf {
                weight: leaf_weight,
            };
            return;
        };

        let threshold = data.cuts.cuts[feature][bin as usize];
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&i| data.bins[i][feature] <= bin);

        let left = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes[node] = Node::Split {
            feature,
            threshold,
            gain,
            left,
            right,
        };
        self.grow(
            data,
            grad,
            hess,
            &left_rows,
            features,
            cfg,
            shrinkage,
            left,
            depth + 1,
        );
        self.grow(
            data,
            grad,
            hess,
            &right_rows,
            features,
            cfg,
            shrinkage,
            right,
            depth + 1,
        );
    }

    /// Predict one raw feature row.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Accumulate per-feature gain into `importance`.
    pub fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importance[*feature] += f64::from(*gain);
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A step function y = 1 if x > 5 else −1, perfectly splittable.
    fn step_data() -> (BinnedMatrix, Vec<f32>, Vec<f32>) {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 0.0]).collect();
        let data = BinnedMatrix::fit(rows, 32).unwrap();
        // Squared loss on residuals: grad = pred − y = −y at pred=0, hess = 1.
        let grad: Vec<f32> = (0..20).map(|i| if i > 5 { -1.0 } else { 1.0 }).collect();
        let hess = vec![1.0; 20];
        (data, grad, hess)
    }

    #[test]
    fn finds_the_obvious_split() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0, 1],
            &TreeConfig::default(),
            1.0,
        );
        // Root must split on feature 0 near 5.5.
        match &tree.nodes[0] {
            Node::Split {
                feature, threshold, ..
            } => {
                assert_eq!(*feature, 0);
                assert!((*threshold - 5.5).abs() < 1.0, "threshold {threshold}");
            }
            Node::Leaf { .. } => panic!("root must split"),
        }
        // Predictions approach ±1 (λ=1 shrinks slightly).
        assert!(tree.predict_row(&[0.0, 0.0]) < -0.5);
        assert!(tree.predict_row(&[10.0, 0.0]) > 0.5);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            gamma: 1e9,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.n_leaves(), 1, "huge gamma must prune everything");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            min_child_weight: 100.0,
            ..Default::default()
        };
        let tree = Tree::fit(&data, &grad, &hess, &rows, &[0, 1], &cfg, 1.0);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn shrinkage_scales_leaves() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let full = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0],
            &TreeConfig::default(),
            1.0,
        );
        let half = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0],
            &TreeConfig::default(),
            0.5,
        );
        let p_full = full.predict_row(&[10.0]);
        let p_half = half.predict_row(&[10.0]);
        assert!((p_half - p_full * 0.5).abs() < 1e-6);
    }

    #[test]
    fn importance_lands_on_informative_feature() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[0, 1],
            &TreeConfig::default(),
            1.0,
        );
        let mut imp = vec![0.0f64; 2];
        tree.accumulate_importance(&mut imp);
        assert!(imp[0] > 0.0);
        assert_eq!(imp[1], 0.0, "constant feature can't gain");
    }

    #[test]
    fn constrained_feature_set_respected() {
        let (data, grad, hess) = step_data();
        let rows: Vec<usize> = (0..20).collect();
        // Only the constant feature is allowed → no split possible.
        let tree = Tree::fit(
            &data,
            &grad,
            &hess,
            &rows,
            &[1],
            &TreeConfig::default(),
            1.0,
        );
        assert_eq!(tree.n_leaves(), 1);
    }
}
