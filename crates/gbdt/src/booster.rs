//! The boosting loop with the softmax multi-class objective.
//!
//! Each round fits one tree per class on the softmax gradients
//! (`g = p_k − 𝟙[y=k]`, `h = p_k (1 − p_k)`), with row subsampling, column
//! subsampling, shrinkage, and early stopping on a validation set.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::data::BinnedMatrix;
use crate::tree::{Tree, TreeConfig};
use rsd_common::rng::{sample_indices, stream_rng};
use rsd_common::{Result, RsdError};

/// Booster hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoosterConfig {
    /// Seed for subsampling.
    pub seed: u64,
    /// Number of classes.
    pub n_classes: usize,
    /// Boosting rounds (upper bound; early stopping may end sooner).
    pub n_rounds: usize,
    /// Shrinkage / learning rate.
    pub learning_rate: f32,
    /// Row subsample fraction per tree.
    pub subsample: f64,
    /// Column subsample fraction per tree.
    pub colsample: f64,
    /// Early-stopping patience in rounds (0 disables).
    pub early_stopping: usize,
    /// Tree growing parameters.
    pub tree: TreeConfig,
}

impl Default for BoosterConfig {
    fn default() -> Self {
        BoosterConfig {
            seed: 0,
            n_classes: 2,
            n_rounds: 100,
            learning_rate: 0.1,
            subsample: 0.8,
            colsample: 0.8,
            early_stopping: 10,
            tree: TreeConfig::default(),
        }
    }
}

/// A fitted multi-class booster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Booster {
    cfg: BoosterConfig,
    /// `trees[round][class]`.
    trees: Vec<Vec<Tree>>,
    n_features: usize,
}

impl Booster {
    /// Train on `train` with labels, optionally early-stopping on a
    /// validation pair.
    pub fn fit(
        train: &BinnedMatrix,
        labels: &[usize],
        valid: Option<(&BinnedMatrix, &[usize])>,
        cfg: BoosterConfig,
    ) -> Result<Booster> {
        if train.len() != labels.len() {
            return Err(RsdError::data("Booster::fit: label count mismatch"));
        }
        if train.is_empty() {
            return Err(RsdError::data("Booster::fit: empty training set"));
        }
        if labels.iter().any(|&l| l >= cfg.n_classes) {
            return Err(RsdError::data("Booster::fit: label out of range"));
        }
        let n = train.len();
        let k = cfg.n_classes;
        let mut rng = stream_rng(cfg.seed, "gbdt.booster");

        // Raw scores per sample per class.
        let mut scores = vec![0.0f32; n * k];
        let mut booster = Booster {
            cfg: cfg.clone(),
            trees: Vec::new(),
            n_features: train.n_features,
        };

        let mut best_valid = f64::INFINITY;
        let mut rounds_since_best = 0usize;
        let mut best_len = 0usize;

        let _fit_span = rsd_obs::Span::enter("gbdt.fit");
        rsd_obs::stage_register("gbdt.fit");
        for _round in 0..cfg.n_rounds {
            let _round_span = rsd_obs::Span::enter("gbdt.fit.round");
            let round_t0 = std::time::Instant::now();
            // Softmax gradients, chunked over whole sample rows (each
            // row's grad/hess cells are written by exactly one chunk).
            let mut grad = vec![0.0f32; n * k];
            let mut hess = vec![0.0f32; n * k];
            rsd_par::parallel_join_mut(&mut grad, &mut hess, 256 * k, |start, gc, hc| {
                let i0 = start / k;
                for (r, (grow, hrow)) in gc.chunks_mut(k).zip(hc.chunks_mut(k)).enumerate() {
                    let i = i0 + r;
                    let probs = softmax(&scores[i * k..(i + 1) * k]);
                    for c in 0..k {
                        let p = probs[c];
                        let y = if labels[i] == c { 1.0 } else { 0.0 };
                        grow[c] = p - y;
                        hrow[c] = (p * (1.0 - p)).max(1e-6);
                    }
                }
            });

            // Row / column subsample for this round.
            let n_rows = ((n as f64) * cfg.subsample).round().max(1.0) as usize;
            let rows = if n_rows < n {
                sample_indices(&mut rng, n, n_rows)
            } else {
                (0..n).collect()
            };
            let n_cols = ((train.n_features as f64) * cfg.colsample).round().max(1.0) as usize;
            let features = if n_cols < train.n_features {
                sample_indices(&mut rng, train.n_features, n_cols)
            } else {
                (0..train.n_features).collect()
            };
            let _ = rng.gen::<u32>(); // decorrelate rounds even at full sample

            // One tree per class; classes are independent given this
            // round's gradients, so they fit in parallel. Score updates
            // then apply per class in order (disjoint score columns).
            let mut round_trees: Vec<Option<Tree>> = vec![None; k];
            rsd_par::parallel_chunks_mut(&mut round_trees, 1, |start, slot| {
                let c = start;
                let _tree_span = rsd_obs::Span::enter("gbdt.fit.tree");
                let g: Vec<f32> = (0..n).map(|i| grad[i * k + c]).collect();
                let h: Vec<f32> = (0..n).map(|i| hess[i * k + c]).collect();
                slot[0] = Some(Tree::fit(
                    train,
                    &g,
                    &h,
                    &rows,
                    &features,
                    &cfg.tree,
                    cfg.learning_rate,
                ));
            });
            let round_trees: Vec<Tree> = round_trees
                .into_iter()
                .map(|t| t.expect("tree fit"))
                .collect();
            rsd_par::parallel_chunks_mut(&mut scores, 64 * k, |start, chunk| {
                let i0 = start / k;
                for (r, srow) in chunk.chunks_mut(k).enumerate() {
                    let raw = &train.raw[i0 + r];
                    for (c, tree) in round_trees.iter().enumerate() {
                        srow[c] += tree.predict_row(raw);
                    }
                }
            });
            booster.trees.push(round_trees);
            rsd_obs::latency_ns("gbdt.fit.round", round_t0.elapsed().as_nanos() as u64);
            rsd_obs::stage_progress("gbdt.fit", k as u64, 0);

            // Early stopping on validation log-loss.
            if let Some((vm, vl)) = valid {
                if cfg.early_stopping > 0 {
                    let loss = booster.log_loss(vm, vl)?;
                    rsd_obs::gauge("gbdt.valid_log_loss", loss);
                    if loss < best_valid - 1e-6 {
                        best_valid = loss;
                        rounds_since_best = 0;
                        best_len = booster.trees.len();
                    } else {
                        rounds_since_best += 1;
                        if rounds_since_best >= cfg.early_stopping {
                            booster.trees.truncate(best_len.max(1));
                            break;
                        }
                    }
                }
            }
        }
        rsd_obs::stage_finish("gbdt.fit");
        Ok(booster)
    }

    /// Raw class scores for one feature row.
    pub fn scores_row(&self, row: &[f32]) -> Vec<f32> {
        let k = self.cfg.n_classes;
        let mut scores = vec![0.0f32; k];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += tree.predict_row(row);
            }
        }
        scores
    }

    /// Class probabilities for one row.
    pub fn predict_proba_row(&self, row: &[f32]) -> Vec<f32> {
        softmax(&self.scores_row(row))
    }

    /// Predicted class for one row.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        let scores = self.scores_row(row);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .expect("non-empty scores")
    }

    /// Predictions for a matrix (row-parallel; each output slot is
    /// written by exactly one chunk).
    pub fn predict(&self, data: &BinnedMatrix) -> Vec<usize> {
        let mut out = vec![0usize; data.len()];
        rsd_par::parallel_chunks_mut(&mut out, 64, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = self.predict_row(&data.raw[start + off]);
            }
        });
        out
    }

    /// Mean multi-class log loss.
    pub fn log_loss(&self, data: &BinnedMatrix, labels: &[usize]) -> Result<f64> {
        if data.len() != labels.len() {
            return Err(RsdError::data("log_loss: label count mismatch"));
        }
        if data.is_empty() {
            return Err(RsdError::data("log_loss: empty data"));
        }
        // Chunked map + in-order fold: the association is fixed by chunk
        // boundaries (row count only), so the loss is thread-count
        // independent.
        let total = rsd_par::parallel_reduce(
            data.len(),
            256,
            |r| {
                let mut part = 0.0f64;
                for i in r {
                    let probs = self.predict_proba_row(&data.raw[i]);
                    part -= f64::from(probs[labels[i]].max(1e-9)).ln();
                }
                part
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        Ok(total / data.len() as f64)
    }

    /// Gain-based feature importance, normalized to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0f64; self.n_features];
        for round in &self.trees {
            for tree in round {
                tree.accumulate_importance(&mut imp);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Boosting rounds actually kept.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Persist the fitted ensemble to a JSON model file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let writer = std::io::BufWriter::new(file);
        serde_json::to_writer(writer, self).map_err(|e| RsdError::Serde(e.to_string()))
    }

    /// Load a model saved by [`Booster::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Booster> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        serde_json::from_reader(reader).map_err(|e| RsdError::Serde(e.to_string()))
    }
}

fn softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 3-class problem in 2D plus a noise feature.
    fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = stream_rng(seed, "gbdt.toy");
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            let noise: f32 = rng.gen_range(-1.0..1.0);
            let label = if x > 0.2 {
                0
            } else if y > 0.0 {
                1
            } else {
                2
            };
            rows.push(vec![x, y, noise]);
            labels.push(label);
        }
        (rows, labels)
    }

    fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
        pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn learns_separable_classes() {
        let (rows, labels) = toy(400, 1);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 40,
            early_stopping: 0,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, None, cfg).unwrap();
        let acc = accuracy(&booster.predict(&train), &labels);
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (rows, labels) = toy(600, 2);
        let (test_rows, test_labels) = toy(200, 3);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let test = train.transform(test_rows).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 60,
            early_stopping: 0,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, None, cfg).unwrap();
        let acc = accuracy(&booster.predict(&test), &test_labels);
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn loss_decreases_with_rounds() {
        let (rows, labels) = toy(300, 4);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let short = Booster::fit(
            &train,
            &labels,
            None,
            BoosterConfig {
                n_classes: 3,
                n_rounds: 2,
                early_stopping: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let long = Booster::fit(
            &train,
            &labels,
            None,
            BoosterConfig {
                n_classes: 3,
                n_rounds: 30,
                early_stopping: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let l_short = short.log_loss(&train, &labels).unwrap();
        let l_long = long.log_loss(&train, &labels).unwrap();
        assert!(l_long < l_short, "loss must decrease: {l_short} → {l_long}");
    }

    #[test]
    fn early_stopping_truncates() {
        let (rows, labels) = toy(300, 5);
        let (vr, vl) = toy(100, 6);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let valid = train.transform(vr).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 200,
            early_stopping: 5,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, Some((&valid, &vl)), cfg).unwrap();
        assert!(
            booster.n_rounds() < 200,
            "early stopping should kick in ({} rounds)",
            booster.n_rounds()
        );
    }

    #[test]
    fn importance_ignores_noise_feature() {
        let (rows, labels) = toy(500, 7);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 30,
            colsample: 1.0,
            early_stopping: 0,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, None, cfg).unwrap();
        let imp = booster.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[2] * 5.0, "x must dominate noise: {imp:?}");
        assert!(imp[1] > imp[2] * 5.0, "y must dominate noise: {imp:?}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let (rows, labels) = toy(200, 8);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 10,
            early_stopping: 0,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, None, cfg).unwrap();
        for row in &train.raw[..10] {
            let p = booster.predict_proba_row(row);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn input_validation() {
        let (rows, mut labels) = toy(10, 9);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        labels.pop();
        assert!(Booster::fit(&train, &labels, None, BoosterConfig::default()).is_err());
        let bad_labels = vec![9usize; 10];
        assert!(Booster::fit(
            &train,
            &bad_labels,
            None,
            BoosterConfig {
                n_classes: 3,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn model_save_load_round_trip() {
        let (rows, labels) = toy(150, 11);
        let train = BinnedMatrix::fit(rows, 64).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 8,
            early_stopping: 0,
            ..Default::default()
        };
        let booster = Booster::fit(&train, &labels, None, cfg).unwrap();
        let path = std::env::temp_dir().join("rsd_gbdt_model_test.json");
        booster.save(&path).unwrap();
        let back = Booster::load(&path).unwrap();
        assert_eq!(back.predict(&train), booster.predict(&train));
        assert_eq!(back.n_rounds(), booster.n_rounds());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = toy(200, 10);
        let train = BinnedMatrix::fit(rows.clone(), 64).unwrap();
        let cfg = BoosterConfig {
            n_classes: 3,
            n_rounds: 10,
            seed: 42,
            early_stopping: 0,
            ..Default::default()
        };
        let a = Booster::fit(&train, &labels, None, cfg.clone()).unwrap();
        let b = Booster::fit(&train, &labels, None, cfg).unwrap();
        assert_eq!(a.predict(&train), b.predict(&train));
    }
}
