#![warn(missing_docs)]

//! Gradient-boosted decision trees (the paper's XGBoost baseline).
//!
//! A histogram-based GBDT with the XGBoost objective: second-order
//! gradient statistics, L2-regularized leaf weights, minimum-gain and
//! minimum-child-weight pre-pruning, shrinkage, row/column subsampling,
//! and a softmax multi-class mode that fits one tree per class per round.
//! Gain-based feature importance reproduces the paper's §III-A1 analysis
//! ("time dimension features contribute most significantly").
//!
//! * [`data`] — the binned feature matrix (quantile-sketch binning, 256
//!   bins, XGBoost's `hist` tree method).
//! * [`tree`] — single regression trees grown greedily on histograms.
//! * [`booster`] — the boosting loop with the multi-class softmax
//!   objective, early stopping on a validation set, and importance.

pub mod booster;
pub mod data;
pub mod tree;

pub use booster::{Booster, BoosterConfig};
pub use data::BinnedMatrix;
pub use tree::Tree;
