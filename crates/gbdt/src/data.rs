//! Feature binning — the `hist` tree method's quantile sketch.
//!
//! Each feature is mapped to at most [`MAX_BINS`] integer bins by quantile
//! cut points computed on the training data; trees then accumulate
//! gradient histograms over bins instead of scanning sorted raw values.

use serde::{Deserialize, Serialize};

use rsd_common::{Result, RsdError};

/// Maximum bins per feature.
pub const MAX_BINS: usize = 256;

/// Per-feature quantile cut points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinCuts {
    /// `cuts[f]` — ascending thresholds for feature `f`; value ≤ cut[i]
    /// lands in bin i, values above all cuts land in the last bin.
    pub cuts: Vec<Vec<f32>>,
}

impl BinCuts {
    /// Compute cuts from training rows (`rows[i]` is sample `i`'s dense
    /// feature vector).
    pub fn fit(rows: &[Vec<f32>], n_features: usize, max_bins: usize) -> Result<Self> {
        if rows.is_empty() {
            return Err(RsdError::data("BinCuts::fit: no rows"));
        }
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let mut cuts = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut vals: Vec<f32> = rows.iter().map(|r| r[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
            vals.dedup();
            let feature_cuts = if vals.len() <= max_bins {
                // One bin per distinct value: cut between consecutive values.
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                (1..max_bins)
                    .map(|b| {
                        let idx = b * (vals.len() - 1) / max_bins;
                        vals[idx]
                    })
                    .collect::<Vec<f32>>()
                    .into_iter()
                    .fold(Vec::new(), |mut acc, c| {
                        if acc.last().is_none_or(|&l| c > l) {
                            acc.push(c);
                        }
                        acc
                    })
            };
            cuts.push(feature_cuts);
        }
        Ok(BinCuts { cuts })
    }

    /// Number of bins for feature `f` (cuts + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// Bin index for a raw value of feature `f` (binary search).
    pub fn bin(&self, f: usize, value: f32) -> u16 {
        let cuts = &self.cuts[f];
        let mut lo = 0usize;
        let mut hi = cuts.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if value <= cuts[mid] {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u16
    }
}

/// A dataset binned for histogram tree growing.
///
/// Bins are stored column-major (`bins[f * n_rows + i]`): histogram
/// building walks one feature at a time, so each feature's bin column is
/// a contiguous streamed slice, and per-feature parallel split search
/// touches disjoint cache lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedMatrix {
    /// Bin cut points (shared with any validation/test matrices).
    pub cuts: BinCuts,
    /// Column-major bin indices: `bins[f * n_rows + i]` is the bin of
    /// sample `i`, feature `f`. Stored as `u8` (indices are below
    /// [`MAX_BINS`] = 256) to halve gather bandwidth in the histogram
    /// loop. Use [`BinnedMatrix::bin`] / [`BinnedMatrix::feature_bins`]
    /// rather than indexing directly.
    pub bins: Vec<u8>,
    /// Raw rows (kept for prediction-time threshold comparisons).
    pub raw: Vec<Vec<f32>>,
    /// Feature count.
    pub n_features: usize,
    /// Sample count.
    pub n_rows: usize,
}

impl BinnedMatrix {
    /// Fit cuts on `rows` and bin them.
    pub fn fit(rows: Vec<Vec<f32>>, max_bins: usize) -> Result<Self> {
        let n_features = rows
            .first()
            .map(Vec::len)
            .ok_or_else(|| RsdError::data("BinnedMatrix::fit: no rows"))?;
        if rows.iter().any(|r| r.len() != n_features) {
            return Err(RsdError::data("BinnedMatrix::fit: ragged rows"));
        }
        let cuts = BinCuts::fit(&rows, n_features, max_bins)?;
        let bins = bin_columns(&cuts, &rows, n_features);
        Ok(BinnedMatrix {
            cuts,
            bins,
            n_features,
            n_rows: rows.len(),
            raw: rows,
        })
    }

    /// Bin new rows with existing cuts (validation/test).
    pub fn transform(&self, rows: Vec<Vec<f32>>) -> Result<BinnedMatrix> {
        if rows.iter().any(|r| r.len() != self.n_features) {
            return Err(RsdError::data("BinnedMatrix::transform: width mismatch"));
        }
        let bins = bin_columns(&self.cuts, &rows, self.n_features);
        Ok(BinnedMatrix {
            cuts: self.cuts.clone(),
            bins,
            n_features: self.n_features,
            n_rows: rows.len(),
            raw: rows,
        })
    }

    /// Bin index of sample `i`, feature `f`.
    #[inline]
    pub fn bin(&self, i: usize, f: usize) -> u16 {
        u16::from(self.bins[f * self.n_rows + i])
    }

    /// The contiguous bin column of feature `f` (indexed by sample).
    #[inline]
    pub fn feature_bins(&self, f: usize) -> &[u8] {
        &self.bins[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }
}

/// Bin `rows` into a column-major bin table, one feature column per
/// parallel chunk (each column is written by exactly one chunk, so the
/// result is thread-count independent).
fn bin_columns(cuts: &BinCuts, rows: &[Vec<f32>], n_features: usize) -> Vec<u8> {
    let n = rows.len();
    let mut bins = vec![0u8; n_features * n];
    if n == 0 {
        return bins;
    }
    rsd_par::parallel_chunks_mut(&mut bins, n, |start, chunk| {
        let f = start / n;
        for (b, row) in chunk.iter_mut().zip(rows) {
            // Indices are < MAX_BINS = 256, so the narrowing is lossless.
            *b = cuts.bin(f, row[f]) as u8;
        }
    });
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f32>> {
        (0..100)
            .map(|i| vec![i as f32, (i % 7) as f32, 0.0])
            .collect()
    }

    #[test]
    fn fit_produces_monotone_cuts() {
        let m = BinnedMatrix::fit(rows(), 16).unwrap();
        for f in 0..3 {
            for w in m.cuts.cuts[f].windows(2) {
                assert!(w[0] < w[1], "cuts must be strictly increasing");
            }
        }
    }

    #[test]
    fn constant_feature_gets_single_bin() {
        let m = BinnedMatrix::fit(rows(), 16).unwrap();
        assert_eq!(m.cuts.n_bins(2), 1);
        assert!((0..m.len()).all(|i| m.bin(i, 2) == 0));
    }

    #[test]
    fn low_cardinality_feature_gets_exact_bins() {
        let m = BinnedMatrix::fit(rows(), 16).unwrap();
        assert_eq!(m.cuts.n_bins(1), 7);
        // Binning must be order-preserving.
        assert!(m.cuts.bin(1, 0.0) < m.cuts.bin(1, 3.0));
        assert!(m.cuts.bin(1, 3.0) < m.cuts.bin(1, 6.0));
    }

    #[test]
    fn binning_respects_cut_boundaries() {
        let m = BinnedMatrix::fit(vec![vec![1.0], vec![2.0], vec![3.0]], 16).unwrap();
        // cuts = [1.5, 2.5]
        assert_eq!(m.cuts.bin(0, 1.0), 0);
        assert_eq!(m.cuts.bin(0, 1.5), 0);
        assert_eq!(m.cuts.bin(0, 2.0), 1);
        assert_eq!(m.cuts.bin(0, 99.0), 2);
        assert_eq!(m.cuts.bin(0, -99.0), 0);
    }

    #[test]
    fn transform_uses_training_cuts() {
        let train = BinnedMatrix::fit(rows(), 16).unwrap();
        let test = train.transform(vec![vec![50.0, 3.0, 0.0]]).unwrap();
        assert_eq!(test.len(), 1);
        assert_eq!(test.bin(0, 1), train.cuts.bin(1, 3.0));
        assert!(train.transform(vec![vec![1.0]]).is_err());
    }

    #[test]
    fn empty_and_ragged_rejected() {
        assert!(BinnedMatrix::fit(vec![], 16).is_err());
        assert!(BinnedMatrix::fit(vec![vec![1.0], vec![1.0, 2.0]], 16).is_err());
    }

    #[test]
    fn max_bins_respected() {
        let rows: Vec<Vec<f32>> = (0..10_000).map(|i| vec![i as f32]).collect();
        let m = BinnedMatrix::fit(rows, 64).unwrap();
        assert!(m.cuts.n_bins(0) <= 64);
        assert!(m.cuts.n_bins(0) > 32);
    }
}
