//! Workspace-wide error type.
//!
//! A single flat enum keeps error plumbing trivial across the eleven crates
//! of the workspace; variants carry enough context to diagnose failures in
//! pipelines (generation → annotation → dataset → model) without chaining.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = RsdError> = std::result::Result<T, E>;

/// Errors produced anywhere in the RSD-15K reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsdError {
    /// A caller supplied an invalid configuration value.
    InvalidConfig {
        /// Which parameter was invalid.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// Input data violated a structural requirement (empty corpus, mismatched
    /// lengths, unknown label, ...).
    InvalidData(String),
    /// An entity lookup failed (user id, post id, task id, model name).
    NotFound {
        /// The kind of entity that was requested ("user", "post", "task", ...).
        entity: &'static str,
        /// The identifier that failed to resolve.
        id: String,
    },
    /// A numeric routine left its domain (NaN loss, singular split, ...).
    Numeric(String),
    /// Serialization / deserialization failure.
    Serde(String),
    /// An I/O failure, stringified (std::io::Error is not Clone/PartialEq).
    Io(String),
    /// A pipeline stage was invoked out of order (e.g. exporting annotations
    /// before the project finished).
    PipelineState(String),
}

impl RsdError {
    /// Shorthand for an [`RsdError::InvalidConfig`].
    pub fn config(field: &'static str, message: impl Into<String>) -> Self {
        RsdError::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// Shorthand for an [`RsdError::InvalidData`].
    pub fn data(message: impl Into<String>) -> Self {
        RsdError::InvalidData(message.into())
    }

    /// Shorthand for an [`RsdError::NotFound`].
    pub fn not_found(entity: &'static str, id: impl fmt::Display) -> Self {
        RsdError::NotFound {
            entity,
            id: id.to_string(),
        }
    }
}

impl fmt::Display for RsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsdError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration for `{field}`: {message}")
            }
            RsdError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            RsdError::NotFound { entity, id } => write!(f, "{entity} not found: {id}"),
            RsdError::Numeric(msg) => write!(f, "numeric error: {msg}"),
            RsdError::Serde(msg) => write!(f, "serialization error: {msg}"),
            RsdError::Io(msg) => write!(f, "io error: {msg}"),
            RsdError::PipelineState(msg) => write!(f, "pipeline state error: {msg}"),
        }
    }
}

impl std::error::Error for RsdError {}

impl From<std::io::Error> for RsdError {
    fn from(err: std::io::Error) -> Self {
        RsdError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = RsdError::config("window", "must be positive");
        assert_eq!(
            e.to_string(),
            "invalid configuration for `window`: must be positive"
        );
        let e = RsdError::not_found("user", 42);
        assert_eq!(e.to_string(), "user not found: 42");
        let e = RsdError::data("empty corpus");
        assert_eq!(e.to_string(), "invalid data: empty corpus");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: RsdError = io.into();
        assert!(matches!(e, RsdError::Io(_)));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RsdError::data("x"), RsdError::InvalidData("x".to_string()));
        assert_ne!(RsdError::data("x"), RsdError::data("y"));
    }
}
