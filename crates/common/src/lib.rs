#![warn(missing_docs)]

//! Shared foundations for the RSD-15K reproduction.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! small, deterministic building blocks every other crate in the workspace
//! leans on —
//!
//! * [`error`] — the workspace-wide error type ([`RsdError`]) and result alias.
//! * [`time`] — civil-time arithmetic over Unix epoch seconds. The paper's
//!   corpus spans 01/2020–12/2021 and several baselines consume hour-of-day /
//!   weekday / night-posting features, so we need calendar math without
//!   pulling in a date crate.
//! * [`rng`] — seed derivation and the heavy-tailed samplers the corpus
//!   generator uses (log-normal posts-per-user, exponential inter-post gaps).
//! * [`stats`] — descriptive statistics, histograms and numeric kernels
//!   (softmax, log-sum-exp) shared by the feature extractors and models.
//!
//! Everything here is pure and deterministic: no wall clock, no global state.

pub mod error;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::{Result, RsdError};
pub use time::{CivilDateTime, Timestamp, Weekday};
