//! Civil-time arithmetic over Unix epoch seconds.
//!
//! The RSD-15K corpus spans January 2020 – December 2021 and the paper's
//! baselines consume calendar-derived features (hour-of-day, weekday,
//! night-posting flags, month periodicity). This module implements the
//! minimal proleptic-Gregorian calendar math required — the classic
//! `days_from_civil` / `civil_from_days` algorithms (Howard Hinnant) — so the
//! workspace needs no external date dependency.
//!
//! All timestamps are UTC. The paper's features are timezone-agnostic
//! (relative patterns, not local clocks), so UTC is a faithful basis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the Unix epoch (1970-01-01T00:00:00Z). May be negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

/// Day of week. `Monday` is 0 to match ISO-8601 ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// ISO weekday 1.
    Monday,
    /// ISO weekday 2.
    Tuesday,
    /// ISO weekday 3.
    Wednesday,
    /// ISO weekday 4.
    Thursday,
    /// ISO weekday 5.
    Friday,
    /// ISO weekday 6.
    Saturday,
    /// ISO weekday 7.
    Sunday,
}

impl Weekday {
    /// Index in `0..7`, Monday = 0.
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Weekday from an index in `0..7` (Monday = 0). Panics out of range.
    pub fn from_index(idx: usize) -> Self {
        match idx {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            6 => Weekday::Sunday,
            _ => panic!("weekday index out of range: {idx}"),
        }
    }
}

/// A broken-down UTC civil date-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CivilDateTime {
    /// Gregorian year, e.g. 2020.
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day of month in `1..=31`.
    pub day: u8,
    /// Hour in `0..=23`.
    pub hour: u8,
    /// Minute in `0..=59`.
    pub minute: u8,
    /// Second in `0..=59`.
    pub second: u8,
}

/// Number of days from 1970-01-01 to `year-month-day` in the proleptic
/// Gregorian calendar. Negative for dates before the epoch.
fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

impl CivilDateTime {
    /// Construct, validating ranges.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || hour > 23 || minute > 59 || second > 59 {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(CivilDateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Convert to a [`Timestamp`].
    pub fn to_timestamp(self) -> Timestamp {
        let days = days_from_civil(self.year, self.month, self.day);
        Timestamp(
            days * 86_400
                + i64::from(self.hour) * 3_600
                + i64::from(self.minute) * 60
                + i64::from(self.second),
        )
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

/// Days in `month` of `year`, accounting for leap years.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl Timestamp {
    /// Seconds in one hour.
    pub const HOUR: i64 = 3_600;
    /// Seconds in one day.
    pub const DAY: i64 = 86_400;
    /// Seconds in one (7-day) week.
    pub const WEEK: i64 = 7 * 86_400;

    /// Build a timestamp from civil components (UTC). `None` if invalid.
    pub fn from_ymd_hms(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Option<Self> {
        CivilDateTime::new(year, month, day, hour, minute, second).map(CivilDateTime::to_timestamp)
    }

    /// Midnight UTC of the given civil date. `None` if invalid.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Option<Self> {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Break down into a civil UTC date-time.
    pub fn to_civil(self) -> CivilDateTime {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (secs / 3_600) as u8,
            minute: ((secs % 3_600) / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Hour of day in `0..24` (UTC).
    pub fn hour(self) -> u8 {
        (self.0.rem_euclid(86_400) / 3_600) as u8
    }

    /// Day of week. The epoch (1970-01-01) was a Thursday.
    pub fn weekday(self) -> Weekday {
        let days = self.0.div_euclid(86_400);
        // 1970-01-01 is Thursday => index 3 with Monday = 0.
        Weekday::from_index(((days + 3).rem_euclid(7)) as usize)
    }

    /// True between 22:00 (inclusive) and 06:00 (exclusive) UTC — the
    /// "night posting" window used by the paper's temporal features.
    pub fn is_night(self) -> bool {
        !(6..22).contains(&self.hour())
    }

    /// True on Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.weekday().is_weekend()
    }

    /// Signed difference `self - other` in seconds.
    pub fn seconds_since(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }

    /// Signed difference `self - other` in fractional days.
    pub fn days_since(self, other: Timestamp) -> f64 {
        (self.0 - other.0) as f64 / 86_400.0
    }

    /// Add a (possibly negative) number of seconds.
    pub fn plus_seconds(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Fraction of the day elapsed, in `[0, 1)`.
    pub fn day_fraction(self) -> f64 {
        self.0.rem_euclid(86_400) as f64 / 86_400.0
    }

    /// Calendar month index since year 0 (`year * 12 + month - 1`). Useful
    /// for bucketing posts by month.
    pub fn month_index(self) -> i64 {
        let c = self.to_civil();
        i64::from(c.year) * 12 + i64::from(c.month) - 1
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_civil().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday_midnight() {
        let t = Timestamp(0);
        let c = t.to_civil();
        assert_eq!((c.year, c.month, c.day), (1970, 1, 1));
        assert_eq!((c.hour, c.minute, c.second), (0, 0, 0));
        assert_eq!(t.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates_round_trip() {
        // 2020-01-01T00:00:00Z = 1577836800 (Wednesday)
        let t = Timestamp::from_ymd(2020, 1, 1).unwrap();
        assert_eq!(t.0, 1_577_836_800);
        assert_eq!(t.weekday(), Weekday::Wednesday);
        // 2021-12-31T23:59:59Z = 1640995199 (Friday)
        let t = Timestamp::from_ymd_hms(2021, 12, 31, 23, 59, 59).unwrap();
        assert_eq!(t.0, 1_640_995_199);
        assert_eq!(t.weekday(), Weekday::Friday);
    }

    #[test]
    fn leap_day_2020_valid() {
        assert!(Timestamp::from_ymd(2020, 2, 29).is_some());
        assert!(Timestamp::from_ymd(2021, 2, 29).is_none());
        assert!(Timestamp::from_ymd(2100, 2, 29).is_none());
        assert!(Timestamp::from_ymd(2000, 2, 29).is_some());
    }

    #[test]
    fn invalid_components_rejected() {
        assert!(Timestamp::from_ymd(2020, 0, 1).is_none());
        assert!(Timestamp::from_ymd(2020, 13, 1).is_none());
        assert!(Timestamp::from_ymd(2020, 4, 31).is_none());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 24, 0, 0).is_none());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 0, 60, 0).is_none());
    }

    #[test]
    fn night_window() {
        let t = Timestamp::from_ymd_hms(2020, 6, 15, 23, 0, 0).unwrap();
        assert!(t.is_night());
        let t = Timestamp::from_ymd_hms(2020, 6, 15, 5, 59, 59).unwrap();
        assert!(t.is_night());
        let t = Timestamp::from_ymd_hms(2020, 6, 15, 6, 0, 0).unwrap();
        assert!(!t.is_night());
        let t = Timestamp::from_ymd_hms(2020, 6, 15, 21, 59, 59).unwrap();
        assert!(!t.is_night());
    }

    #[test]
    fn weekend_detection() {
        // 2020-06-13 was a Saturday.
        let t = Timestamp::from_ymd(2020, 6, 13).unwrap();
        assert!(t.is_weekend());
        assert_eq!(t.weekday(), Weekday::Saturday);
        let t = Timestamp::from_ymd(2020, 6, 15).unwrap();
        assert!(!t.is_weekend());
        assert_eq!(t.weekday(), Weekday::Monday);
    }

    #[test]
    fn negative_timestamps_work() {
        // 1969-12-31T23:59:59Z
        let t = Timestamp(-1);
        let c = t.to_civil();
        assert_eq!((c.year, c.month, c.day), (1969, 12, 31));
        assert_eq!((c.hour, c.minute, c.second), (23, 59, 59));
        assert_eq!(t.hour(), 23);
    }

    #[test]
    fn month_index_advances() {
        let jan = Timestamp::from_ymd(2020, 1, 15).unwrap();
        let feb = Timestamp::from_ymd(2020, 2, 15).unwrap();
        let jan21 = Timestamp::from_ymd(2021, 1, 15).unwrap();
        assert_eq!(feb.month_index() - jan.month_index(), 1);
        assert_eq!(jan21.month_index() - jan.month_index(), 12);
    }

    #[test]
    fn display_is_iso8601() {
        let t = Timestamp::from_ymd_hms(2020, 3, 7, 9, 5, 2).unwrap();
        assert_eq!(t.to_string(), "2020-03-07T09:05:02Z");
    }

    #[test]
    fn day_fraction_bounds() {
        let t = Timestamp::from_ymd_hms(2020, 3, 7, 12, 0, 0).unwrap();
        assert!((t.day_fraction() - 0.5).abs() < 1e-9);
        let t = Timestamp::from_ymd(2020, 3, 7).unwrap();
        assert_eq!(t.day_fraction(), 0.0);
    }

    #[test]
    fn exhaustive_round_trip_2020_2021() {
        // Every day in the corpus window round-trips.
        let mut t = Timestamp::from_ymd(2020, 1, 1).unwrap();
        let end = Timestamp::from_ymd(2022, 1, 1).unwrap();
        let mut count = 0;
        while t < end {
            let c = t.to_civil();
            assert_eq!(c.to_timestamp(), t, "round trip failed at {t}");
            t = t.plus_seconds(Timestamp::DAY);
            count += 1;
        }
        assert_eq!(count, 366 + 365);
    }
}
