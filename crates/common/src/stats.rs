//! Descriptive statistics and small numeric kernels.
//!
//! Shared by the feature extractors (`rsd-features`), the evaluation crate
//! and the corpus generator. Everything operates on `f64` slices and is
//! written to behave sensibly on empty input (returning 0.0 rather than NaN)
//! because feature extraction routinely sees users with a single post.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum; 0.0 for empty input.
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Maximum; 0.0 for empty input.
pub fn max(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on a sorted copy.
/// 0.0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation of two equal-length series; 0.0 if undefined
/// (mismatched length, fewer than 2 points, or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Least-squares slope of `ys` against `0..n` — the "trend" feature the
/// paper's sequence dimension uses for history windows. 0.0 if undefined.
pub fn linear_trend(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mx = mean(&xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx).powi(2);
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Numerically-stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Numerically-stable softmax. Returns an empty vec for empty input.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lse = log_sum_exp(xs);
    xs.iter().map(|x| (x - lse).exp()).collect()
}

/// A fixed-width histogram over `[lo, hi)` with overflow captured in the
/// last bucket. Used for Fig. 1 (posts-per-user distribution).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub lo: f64,
    /// Exclusive upper bound of the last regular bucket.
    pub hi: f64,
    /// Per-bucket counts; the final entry also absorbs values ≥ `hi`.
    pub counts: Vec<u64>,
    /// Values below `lo` (tracked separately; not expected in practice).
    pub underflow: u64,
    /// Total number of observations recorded.
    pub total: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` equal-width buckets on `[lo, hi)`.
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "Histogram: need at least one bucket");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bucket boundaries as `(inclusive_lo, exclusive_hi)` pairs; the final
    /// bucket is reported as extending to infinity since it absorbs overflow.
    pub fn bucket_ranges(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| {
                let lo = self.lo + width * i as f64;
                let hi = if i + 1 == self.counts.len() {
                    f64::INFINITY
                } else {
                    lo + width
                };
                (lo, hi)
            })
            .collect()
    }

    /// Fraction of recorded observations falling strictly below `x`
    /// (bucket-resolution approximation).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut below = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            let bucket_hi = self.lo + width * (i + 1) as f64;
            if bucket_hi <= x {
                below += c;
            } else {
                break;
            }
        }
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(linear_trend(&[]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }

    #[test]
    fn trend_matches_slope() {
        let ys = [0.0, 2.0, 4.0, 6.0];
        assert!((linear_trend(&ys) - 2.0).abs() < 1e-12);
        let ys = [3.0, 3.0, 3.0];
        assert_eq!(linear_trend(&ys), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 1002.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let big = log_sum_exp(&[1e6, 1e6]);
        assert!((big - (1e6 + std::f64::consts::LN_2)).abs() < 1e-6);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.0, 9.9, 10.0, 50.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.total, 8);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.counts, vec![2, 1, 1, 0, 3]); // overflow lands in last bucket
        let ranges = h.bucket_ranges();
        assert_eq!(ranges[0], (0.0, 2.0));
        assert_eq!(ranges[4].1, f64::INFINITY);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.fraction_below(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_below(0.0), 0.0);
    }
}
