//! Deterministic randomness utilities.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed;
//! this module provides the glue: stable seed derivation for independent
//! substreams (so adding a consumer never perturbs another's stream), plus
//! the samplers the corpus generator needs — truncated log-normal for the
//! heavy-tailed posts-per-user distribution visible in the paper's Fig. 1,
//! exponential for inter-post gaps, and categorical/weighted choice.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — used to derive statistically independent sub-seeds from
/// a master seed and a stream label.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Create a [`StdRng`] for a named substream of `master`.
///
/// The label is hashed with FNV-1a so call sites can use readable names
/// ("corpus.users", "annotator.0") without coordinating integer ids.
pub fn stream_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(split_seed(master, fnv1a(label.as_bytes())))
}

/// FNV-1a 64-bit hash (stable across platforms and Rust versions, unlike
/// `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Sample from a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Sample `exp(mu + sigma * N(0,1))`, clamped to `[lo, hi]`.
///
/// Used for posts-per-user: a log-normal body with a hard floor of 1 post
/// and a ceiling so a single synthetic user cannot dominate the corpus,
/// matching the paper's Fig. 1 (most users < 20 posts, a thin active tail).
pub fn truncated_log_normal(rng: &mut impl Rng, mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    let x = (mu + sigma * standard_normal(rng)).exp();
    x.clamp(lo, hi)
}

/// Sample an exponential with the given mean (in the same unit the caller
/// interprets, e.g. seconds between posts).
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    // Guard against ln(0).
    -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
}

/// Draw an index from unnormalized non-negative weights.
///
/// Panics if `weights` is empty or sums to a non-finite / non-positive value.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(
        total.is_finite() && total > 0.0,
        "weighted_index: weights must sum to a positive finite value, got {total}"
    );
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "weighted_index: negative weight {w}");
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle (deterministic given the RNG state).
pub fn shuffle<T>(rng: &mut impl Rng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Sample `k` distinct indices from `0..n` (partial Fisher–Yates).
/// Panics if `k > n`.
pub fn sample_indices(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k ({k}) > n ({n})");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn split_seed_is_deterministic_and_distinct() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        assert_ne!(split_seed(42, 0), split_seed(42, 1));
        assert_ne!(split_seed(42, 0), split_seed(43, 0));
    }

    #[test]
    fn stream_rng_reproducible() {
        let a: Vec<u32> = {
            let mut r = stream_rng(7, "corpus.users");
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = stream_rng(7, "corpus.users");
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = stream_rng(7, "corpus.posts");
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn fnv1a_known_vectors() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn truncated_log_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = truncated_log_normal(&mut rng, 1.5, 1.0, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        let p: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((p[0] - 0.1).abs() < 0.02);
        assert!((p[1] - 0.3).abs() < 0.02);
        assert!((p[2] - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn weighted_index_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        weighted_index(&mut rng, &[]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picked = sample_indices(&mut rng, 50, 20);
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
