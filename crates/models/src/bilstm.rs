//! The BiLSTM baseline (paper §III-A2): a time-aware bidirectional LSTM.
//!
//! Faithful to the paper's structure: multi-dimensional time encodings are
//! projected into embedding space and fused with the token representation
//! through a multi-head attention layer *before* the BiLSTM ("this
//! mechanism integrates temporal features and text representation before
//! BiLSTM"), then a bidirectional LSTM reads the fused sequence and a
//! linear head classifies the mean-pooled states.

use rand::rngs::StdRng;

use crate::encoding::{EncodedWindow, TaskEncoder, TIME_FEATURE_DIM};
use crate::trainer::{
    augment_train_windows, evaluate, outcome_from_confusion, train_classifier, BenchData,
    EvalOutcome, TrainConfig,
};
use rsd_common::rng::stream_rng;
use rsd_common::Result;
use rsd_corpus::RiskLevel;
use rsd_nn::attention::MultiHeadAttention;
use rsd_nn::layers::{Embedding, Linear};
use rsd_nn::matrix::Matrix;
use rsd_nn::rnn::Lstm;
use rsd_nn::{ParamStore, Tape, Var};

/// BiLSTM baseline hyperparameters.
#[derive(Debug, Clone)]
pub struct BiLstmConfig {
    /// Vocabulary cap.
    pub max_vocab: usize,
    /// Token cap per post (incl. `[CLS]`).
    pub max_tokens: usize,
    /// Embedding width.
    pub emb_dim: usize,
    /// Total token cap for the concatenated window stream (same input
    /// contract as the PLM baselines; LSTMs must carry it recurrently).
    pub window_tokens: usize,
    /// LSTM hidden width (per direction).
    pub hidden: usize,
    /// Fusion attention heads.
    pub heads: usize,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for BiLstmConfig {
    fn default() -> Self {
        BiLstmConfig {
            max_vocab: 2_000,
            max_tokens: 56,
            window_tokens: 96,
            emb_dim: 32,
            hidden: 32,
            heads: 2,
            train: TrainConfig {
                epochs: 6,
                lr: 2e-3,
                ..Default::default()
            },
        }
    }
}

struct BiLstmModel {
    emb: Embedding,
    time_proj: Linear,
    fusion: MultiHeadAttention,
    lstm: Lstm,
    head: Linear,
    window_tokens: usize,
}

impl BiLstmModel {
    fn new(store: &mut ParamStore, cfg: &BiLstmConfig, vocab: usize, rng: &mut StdRng) -> Self {
        BiLstmModel {
            emb: Embedding::new(store, "bilstm.emb", vocab, cfg.emb_dim, rng),
            time_proj: Linear::new(
                store,
                "bilstm.time_proj",
                TIME_FEATURE_DIM,
                cfg.emb_dim,
                rng,
            ),
            fusion: MultiHeadAttention::new(store, "bilstm.fusion", cfg.emb_dim, cfg.heads, rng),
            lstm: Lstm::new(store, "bilstm.lstm", cfg.emb_dim, cfg.hidden, rng),
            head: Linear::new(store, "bilstm.head", 2 * cfg.hidden, RiskLevel::COUNT, rng),
            window_tokens: cfg.window_tokens,
        }
    }

    /// Forward: window time rows + latest-post tokens → logits (1×4).
    fn forward(&self, tape: &mut Tape, store: &ParamStore, example: &EncodedWindow) -> Var {
        // Temporal rows: one per post in the window.
        let w = example.time_feats.len();
        let time_data: Vec<f32> = example
            .time_feats
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        let time_raw = tape.constant(Matrix::from_vec(w, TIME_FEATURE_DIM, time_data));
        let time_rows = self.time_proj.forward(tape, store, time_raw);

        // Token rows of the window stream (latest post first — the same
        // input contract the PLM baselines get).
        let ids = example.window_tokens(self.window_tokens);
        let tokens = self.emb.forward(tape, store, &ids);

        // Fuse: attention over [time; tokens], then BiLSTM over the fused
        // sequence.
        let combined = tape.concat_rows(&[time_rows, tokens]);
        let fused = self.fusion.forward(tape, store, combined);
        let residual = tape.add(combined, fused);

        let fwd = self.lstm.run(tape, store, residual, false);
        let bwd = self.lstm.run(tape, store, residual, true);
        let states = tape.concat_cols(&[fwd, bwd]);
        let pooled = tape.mean_rows(states);
        self.head.forward(tape, store, pooled)
    }
}

/// The runnable baseline.
pub struct BiLstmBaseline {
    cfg: BiLstmConfig,
}

impl BiLstmBaseline {
    /// Create with configuration.
    pub fn new(cfg: BiLstmConfig) -> Self {
        BiLstmBaseline { cfg }
    }

    /// Train on the bench data and evaluate on its test split.
    pub fn run(&self, data: &BenchData<'_>) -> Result<EvalOutcome> {
        let cfg = &self.cfg;
        let encoder = TaskEncoder::fit(
            data.dataset,
            &data.splits.train,
            cfg.max_vocab,
            cfg.max_tokens,
        );
        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.train.post_level_cap,
        );
        let train = encoder.encode_all(data.dataset, &train_windows);
        let valid = encoder.encode_all(data.dataset, &data.splits.valid);
        let test = encoder.encode_all(data.dataset, &data.splits.test);

        let mut rng = stream_rng(data.seed, "bilstm.init");
        let mut store = ParamStore::new();
        let model = BiLstmModel::new(&mut store, cfg, encoder.vocab.len(), &mut rng);

        let forward = |tape: &mut Tape,
                       store: &ParamStore,
                       ex: &EncodedWindow,
                       _rng: &mut StdRng| model.forward(tape, store, ex);
        let history =
            train_classifier(&mut store, &forward, &train, &valid, &cfg.train, data.seed)?;

        let mut eval_rng = stream_rng(data.seed, "bilstm.eval");
        let confusion = evaluate(&store, &forward, &test, &mut eval_rng)?;
        let extra = vec![
            ("epochs_run".to_string(), history.len().to_string()),
            (
                "best_valid_macro_f1".to_string(),
                format!(
                    "{:.4}",
                    history.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                ),
            ),
            ("params".to_string(), store.n_scalars().to_string()),
        ];
        Ok(outcome_from_confusion("BiLSTM", confusion, extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    #[test]
    fn trains_and_evaluates_on_tiny_data() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(801, 1_200, 24))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 801,
        };
        let cfg = BiLstmConfig {
            max_vocab: 300,
            max_tokens: 12,
            window_tokens: 20,
            emb_dim: 8,
            hidden: 8,
            heads: 2,
            train: TrainConfig {
                epochs: 2,
                batch: 8,
                patience: 0,
                ..Default::default()
            },
        };
        let outcome = BiLstmBaseline::new(cfg).run(&data).unwrap();
        assert_eq!(outcome.report.model, "BiLSTM");
        assert_eq!(outcome.confusion.total() as usize, splits.test.len());
        assert!(outcome.report.accuracy >= 0.0);
    }
}
