//! The HiGRU baseline (paper §III-A3): hierarchical GRU.
//!
//! Two levels, as in the paper: a token-level bidirectional GRU encodes
//! each post (with residual connection and layer normalization on the
//! pooled representation), and a post-level GRU models the user's posting
//! sequence with time encodings added per post. A time-aware attention
//! over the post-level states produces the classification context.

use rand::rngs::StdRng;

use crate::encoding::{EncodedWindow, TaskEncoder, TIME_FEATURE_DIM};
use crate::trainer::{
    augment_train_windows, evaluate, outcome_from_confusion, train_classifier, BenchData,
    EvalOutcome, TrainConfig,
};
use rsd_common::rng::stream_rng;
use rsd_common::Result;
use rsd_corpus::RiskLevel;
use rsd_nn::attention::MultiHeadAttention;
use rsd_nn::layers::{Embedding, LayerNorm, Linear};
use rsd_nn::matrix::Matrix;
use rsd_nn::rnn::Gru;
use rsd_nn::{ParamStore, Tape, Var};

/// HiGRU hyperparameters.
#[derive(Debug, Clone)]
pub struct HiGruConfig {
    /// Vocabulary cap.
    pub max_vocab: usize,
    /// Token cap per post.
    pub max_tokens: usize,
    /// Embedding width.
    pub emb_dim: usize,
    /// Token-level GRU hidden width (per direction).
    pub token_hidden: usize,
    /// Post-level GRU hidden width.
    pub post_hidden: usize,
    /// Attention heads for the time-aware attention.
    pub heads: usize,
    /// Training loop settings.
    pub train: TrainConfig,
}

impl Default for HiGruConfig {
    fn default() -> Self {
        HiGruConfig {
            max_vocab: 2_000,
            max_tokens: 48,
            emb_dim: 32,
            token_hidden: 24,
            post_hidden: 48,
            heads: 2,
            train: TrainConfig {
                epochs: 6,
                lr: 2e-3,
                ..Default::default()
            },
        }
    }
}

struct HiGruModel {
    emb: Embedding,
    token_gru: Gru,
    token_ln: LayerNorm,
    token_residual: Linear,
    time_proj: Linear,
    post_gru: Gru,
    attention: MultiHeadAttention,
    head: Linear,
    post_dim: usize,
}

impl HiGruModel {
    fn new(store: &mut ParamStore, cfg: &HiGruConfig, vocab: usize, rng: &mut StdRng) -> Self {
        let post_dim = 2 * cfg.token_hidden;
        HiGruModel {
            emb: Embedding::new(store, "higru.emb", vocab, cfg.emb_dim, rng),
            token_gru: Gru::new(store, "higru.token_gru", cfg.emb_dim, cfg.token_hidden, rng),
            token_ln: LayerNorm::new(store, "higru.token_ln", post_dim),
            token_residual: Linear::new(store, "higru.token_res", cfg.emb_dim, post_dim, rng),
            time_proj: Linear::new(store, "higru.time_proj", TIME_FEATURE_DIM, post_dim, rng),
            post_gru: Gru::new(store, "higru.post_gru", post_dim, cfg.post_hidden, rng),
            attention: MultiHeadAttention::new(
                store,
                "higru.attn",
                cfg.post_hidden,
                cfg.heads,
                rng,
            ),
            head: Linear::new(
                store,
                "higru.head",
                2 * cfg.post_hidden,
                RiskLevel::COUNT,
                rng,
            ),
            post_dim,
        }
    }

    /// Encode one post: bidirectional token GRU, mean-pool, residual from
    /// mean embedding, layer norm. Returns 1×post_dim.
    fn encode_post(&self, tape: &mut Tape, store: &ParamStore, tokens: &[u32]) -> Var {
        let embs = self.emb.forward(tape, store, tokens);
        let fwd = self.token_gru.run(tape, store, embs, false);
        let bwd = self.token_gru.run(tape, store, embs, true);
        // Order-preserving summary: final forward state + final backward
        // state (the state at row 0 of the reversed run).
        let (n, _) = tape.shape(fwd);
        let fwd_last = tape.select_row(fwd, n - 1);
        let bwd_first = tape.select_row(bwd, 0);
        let pooled = tape.concat_cols(&[fwd_last, bwd_first]);
        // Residual from the bag-of-embeddings (projected), then LN — the
        // paper's "residual connections and layer normalization mechanisms
        // to improve training stability".
        let bag = tape.mean_rows(embs);
        let res = self.token_residual.forward(tape, store, bag);
        let summed = tape.add(pooled, res);
        self.token_ln.forward(tape, store, summed)
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, example: &EncodedWindow) -> Var {
        // Token level: one vector per post, plus projected time encoding.
        let mut post_rows = Vec::with_capacity(example.post_tokens.len());
        for (tokens, time) in example.post_tokens.iter().zip(&example.time_feats) {
            let text_vec = self.encode_post(tape, store, tokens);
            let t = tape.constant(Matrix::row_vec(time.to_vec()));
            let t = self.time_proj.forward(tape, store, t);
            post_rows.push(tape.add(text_vec, t));
        }
        let _ = self.post_dim;
        let posts = tape.concat_rows(&post_rows);

        // Post level: GRU over the sequence, time-aware attention over the
        // resulting states.
        let states = self.post_gru.run(tape, store, posts, false);
        let attended = self.attention.forward(tape, store, states);
        let (n_posts, _) = tape.shape(states);
        let last_state = tape.select_row(states, n_posts - 1);
        let ctx = tape.mean_rows(attended);
        let both = tape.concat_cols(&[last_state, ctx]);
        self.head.forward(tape, store, both)
    }
}

/// The runnable baseline.
pub struct HiGruBaseline {
    cfg: HiGruConfig,
}

impl HiGruBaseline {
    /// Create with configuration.
    pub fn new(cfg: HiGruConfig) -> Self {
        HiGruBaseline { cfg }
    }

    /// Train on the bench data and evaluate on its test split.
    pub fn run(&self, data: &BenchData<'_>) -> Result<EvalOutcome> {
        let cfg = &self.cfg;
        let encoder = TaskEncoder::fit(
            data.dataset,
            &data.splits.train,
            cfg.max_vocab,
            cfg.max_tokens,
        );
        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.train.post_level_cap,
        );
        let train = encoder.encode_all(data.dataset, &train_windows);
        let valid = encoder.encode_all(data.dataset, &data.splits.valid);
        let test = encoder.encode_all(data.dataset, &data.splits.test);

        let mut rng = stream_rng(data.seed, "higru.init");
        let mut store = ParamStore::new();
        let model = HiGruModel::new(&mut store, cfg, encoder.vocab.len(), &mut rng);

        let forward = |tape: &mut Tape,
                       store: &ParamStore,
                       ex: &EncodedWindow,
                       _rng: &mut StdRng| model.forward(tape, store, ex);
        let history =
            train_classifier(&mut store, &forward, &train, &valid, &cfg.train, data.seed)?;

        let mut eval_rng = stream_rng(data.seed, "higru.eval");
        let confusion = evaluate(&store, &forward, &test, &mut eval_rng)?;
        let extra = vec![
            ("epochs_run".to_string(), history.len().to_string()),
            ("params".to_string(), store.n_scalars().to_string()),
        ];
        Ok(outcome_from_confusion("HiGRU", confusion, extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    #[test]
    fn trains_and_evaluates_on_tiny_data() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(802, 1_200, 24))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 802,
        };
        let cfg = HiGruConfig {
            max_vocab: 300,
            max_tokens: 10,
            emb_dim: 8,
            token_hidden: 4,
            post_hidden: 8,
            heads: 2,
            train: TrainConfig {
                epochs: 2,
                batch: 8,
                patience: 0,
                ..Default::default()
            },
        };
        let outcome = HiGruBaseline::new(cfg).run(&data).unwrap();
        assert_eq!(outcome.report.model, "HiGRU");
        assert_eq!(outcome.confusion.total() as usize, splits.test.len());
    }
}
