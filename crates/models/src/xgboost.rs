//! The XGBoost baseline (paper §III-A1): the three-dimension feature
//! framework fed into the gradient-boosted tree ensemble, plus the
//! feature-importance analysis the paper reports.

use rsd_common::Result;
use rsd_corpus::RiskLevel;
use rsd_eval::ConfusionMatrix;
use rsd_features::FeatureDimension;
use rsd_gbdt::BoosterConfig;

use crate::scorer::ScoringModel;
use crate::trainer::{outcome_from_confusion, BenchData, EvalOutcome};

/// XGBoost baseline hyperparameters.
#[derive(Debug, Clone)]
pub struct XgboostConfig {
    /// TF-IDF feature cap.
    pub max_tfidf: usize,
    /// Post-level training expansion cap (see `TrainConfig::post_level_cap`).
    pub post_level_cap: usize,
    /// Boosting configuration.
    pub booster: BoosterConfig,
}

impl Default for XgboostConfig {
    fn default() -> Self {
        XgboostConfig {
            max_tfidf: 300,
            post_level_cap: 6,
            booster: BoosterConfig {
                n_classes: RiskLevel::COUNT,
                n_rounds: 120,
                learning_rate: 0.15,
                early_stopping: 12,
                ..Default::default()
            },
        }
    }
}

/// The fitted baseline.
pub struct XgboostBaseline {
    cfg: XgboostConfig,
}

impl XgboostBaseline {
    /// Create with configuration.
    pub fn new(cfg: XgboostConfig) -> Self {
        XgboostBaseline { cfg }
    }

    /// Train on the bench data and evaluate on its test split.
    ///
    /// Training and inference both run through the shared
    /// [`ScoringModel`] — the same artifact the online serving path
    /// scores with — so batch evaluation and serving cannot drift.
    pub fn run(&self, data: &BenchData<'_>) -> Result<EvalOutcome> {
        let model = ScoringModel::fit(&self.cfg, data)?;
        let y_test: Vec<usize> = data.splits.test.iter().map(|w| w.label.index()).collect();
        let preds = model.score_windows(data.dataset, &data.splits.test);
        let confusion = ConfusionMatrix::from_labels(RiskLevel::COUNT, &y_test, &preds)?;

        // Importance analysis: per-dimension gain shares.
        let (extractor, booster) = (model.extractor(), model.booster());
        let importance = booster.feature_importance();
        let by_dim = extractor.importance_by_dimension(&importance);
        let mut extra: Vec<(String, String)> = by_dim
            .iter()
            .map(|(dim, share)| {
                (
                    format!("importance.{}", dim_name(*dim)),
                    format!("{share:.4}"),
                )
            })
            .collect();
        extra.push(("rounds".to_string(), booster.n_rounds().to_string()));
        // Top-5 individual features.
        let mut ranked: Vec<(usize, f64)> = importance.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importance"));
        for (rank, (idx, share)) in ranked.iter().take(5).enumerate() {
            extra.push((
                format!("top_feature.{rank}"),
                format!("{} ({share:.4})", extractor.names()[*idx]),
            ));
        }

        Ok(outcome_from_confusion("XGBoost", confusion, extra))
    }
}

fn dim_name(dim: FeatureDimension) -> &'static str {
    match dim {
        FeatureDimension::Time => "time",
        FeatureDimension::Text => "text",
        FeatureDimension::Sequence => "sequence",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    #[test]
    fn runs_end_to_end_and_beats_chance() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(701, 3_000, 60))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 701,
        };
        let cfg = XgboostConfig {
            max_tfidf: 100,
            post_level_cap: 4,
            booster: BoosterConfig {
                n_classes: 4,
                n_rounds: 25,
                early_stopping: 0,
                ..Default::default()
            },
        };
        let outcome = XgboostBaseline::new(cfg).run(&data).unwrap();
        // Majority class (Ideation ≈ 49 %) is the chance-ish floor; the
        // model must at least clear uniform chance on this small sample.
        assert!(
            outcome.report.accuracy > 0.25,
            "accuracy {}",
            outcome.report.accuracy
        );
        assert!(outcome.extra.iter().any(|(k, _)| k == "importance.time"));
        assert_eq!(outcome.report.model, "XGBoost");
    }
}
