//! In-domain masked-language-model pretraining.
//!
//! The paper fine-tunes publicly pretrained RoBERTa/DeBERTa checkpoints;
//! no such weights exist for a from-scratch reproduction, so the PLM
//! baselines are first pretrained with BERT-style MLM on the large
//! *unannotated* pool the crawl produced — the same in-domain-knowledge
//! advantage, acquired the same way (self-supervision on unlabelled text).
//!
//! Standard 80/10/10 masking: of the 15 % selected positions, 80 % become
//! `[MASK]`, 10 % a random token, 10 % stay unchanged; loss is computed on
//! selected positions only.

use rand::rngs::StdRng;
use rand::Rng;

use crate::encoding::TaskEncoder;
use rsd_common::rng::{shuffle, stream_rng};
use rsd_common::{Result, RsdError};
use rsd_nn::transformer::{Encoder, MlmHead};
use rsd_nn::{Adam, Optimizer, ParamStore, Tape};
use rsd_text::SpecialToken;

/// MLM pretraining parameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Fraction of positions selected for prediction.
    pub mask_prob: f32,
    /// Passes over the pretraining texts.
    pub epochs: usize,
    /// Minibatch size (gradient accumulation).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            mask_prob: 0.15,
            epochs: 1,
            batch: 16,
            lr: 1e-3,
        }
    }
}

/// Apply BERT-style masking. Returns `(input_ids, targets)` where targets
/// pairs `(position, original_id)` for selected positions.
pub fn mask_tokens(
    ids: &[u32],
    vocab_size: usize,
    mask_prob: f32,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<(usize, u32)>) {
    let mut input = ids.to_vec();
    let mut targets = Vec::new();
    for (pos, &orig) in ids.iter().enumerate() {
        // Never mask [CLS]/[PAD].
        if orig == SpecialToken::Cls.id() || orig == SpecialToken::Pad.id() {
            continue;
        }
        if rng.gen::<f32>() >= mask_prob {
            continue;
        }
        targets.push((pos, orig));
        let roll: f32 = rng.gen();
        input[pos] = if roll < 0.8 {
            SpecialToken::Mask.id()
        } else if roll < 0.9 {
            rng.gen_range(SpecialToken::ALL.len() as u32..vocab_size as u32)
        } else {
            orig
        };
    }
    (input, targets)
}

/// Run MLM pretraining of `encoder` (+`head`) over `texts`. Returns the
/// mean masked-token loss of the final epoch.
pub fn mlm_pretrain(
    encoder: &Encoder,
    head: &MlmHead,
    store: &mut ParamStore,
    task_encoder: &TaskEncoder,
    texts: &[String],
    cfg: &PretrainConfig,
    seed: u64,
) -> Result<f32> {
    if texts.is_empty() {
        return Err(RsdError::data("mlm_pretrain: no texts"));
    }
    let vocab_size = task_encoder.vocab.len();
    let mut rng = stream_rng(seed, "pretrain.mlm");
    let mut opt = Adam::new(cfg.lr);
    let mut last_epoch_loss = 0.0f32;

    for _epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..texts.len()).collect();
        shuffle(&mut rng, &mut order);
        let mut epoch_loss = 0.0f64;
        let mut examples = 0usize;
        let mut in_batch = 0usize;

        for &i in &order {
            let ids = task_encoder.encode_text(&texts[i]);
            if ids.len() < 4 {
                continue;
            }
            let (input, targets) = mask_tokens(&ids, vocab_size, cfg.mask_prob, &mut rng);
            if targets.is_empty() {
                continue;
            }
            let mut tape = Tape::new();
            let states = encoder.forward(&mut tape, store, &input, None, &mut rng);
            let logits = head.forward(&mut tape, store, states);
            // Gather the masked rows and score them.
            let rows: Vec<_> = targets
                .iter()
                .map(|&(pos, _)| tape.select_row(logits, pos))
                .collect();
            let masked_logits = tape.concat_rows(&rows);
            let target_ids: Vec<usize> = targets.iter().map(|&(_, t)| t as usize).collect();
            let loss = tape.cross_entropy(masked_logits, &target_ids);
            epoch_loss += f64::from(tape.value(loss).data[0]);
            examples += 1;
            tape.backward(loss);
            tape.harvest_grads(store);
            in_batch += 1;
            if in_batch >= cfg.batch {
                store.scale_grads(1.0 / in_batch as f32);
                store.clip_grad_norm(5.0);
                opt.step(store);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            store.scale_grads(1.0 / in_batch as f32);
            store.clip_grad_norm(5.0);
            opt.step(store);
        }
        last_epoch_loss = if examples > 0 {
            (epoch_loss / examples as f64) as f32
        } else {
            0.0
        };
    }
    Ok(last_epoch_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rsd_nn::transformer::{EncoderConfig, PositionMode};

    #[test]
    fn masking_respects_specials_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<u32> = std::iter::once(SpecialToken::Cls.id())
            .chain(10..200u32)
            .collect();
        let (input, targets) = mask_tokens(&ids, 300, 0.15, &mut rng);
        assert_eq!(input[0], SpecialToken::Cls.id(), "[CLS] never masked");
        let rate = targets.len() as f64 / (ids.len() - 1) as f64;
        assert!((rate - 0.15).abs() < 0.08, "mask rate {rate}");
        for &(pos, orig) in &targets {
            assert_eq!(ids[pos], orig, "targets store original ids");
        }
        // Most selected positions become [MASK].
        let masked = targets
            .iter()
            .filter(|&&(pos, _)| input[pos] == SpecialToken::Mask.id())
            .count();
        assert!(masked as f64 / targets.len() as f64 > 0.6);
    }

    #[test]
    fn pretraining_reduces_loss_on_repetitive_corpus() {
        // A highly repetitive corpus is easy to model; two epochs of MLM
        // must beat the uniform-guess loss ln(vocab).
        let texts: Vec<String> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    "the cat sat on the mat again tonight".to_string()
                } else {
                    "the dog slept on the rug all day".to_string()
                }
            })
            .collect();
        let task_encoder = TaskEncoder::fit_on_texts(&texts, 100, 12);
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc_cfg = EncoderConfig {
            vocab: task_encoder.vocab.len(),
            dim: 16,
            layers: 1,
            heads: 2,
            ffn_dim: 32,
            max_len: 12,
            dropout: 0.0,
            positions: PositionMode::Absolute,
        };
        let encoder = Encoder::new(&mut store, "enc", enc_cfg, &mut rng);
        let head = MlmHead::new(&mut store, "mlm", 16, task_encoder.vocab.len(), &mut rng);
        let cfg = PretrainConfig {
            epochs: 3,
            batch: 8,
            ..Default::default()
        };
        let loss =
            mlm_pretrain(&encoder, &head, &mut store, &task_encoder, &texts, &cfg, 7).unwrap();
        let uniform = (task_encoder.vocab.len() as f32).ln();
        assert!(
            loss < uniform * 0.8,
            "MLM loss {loss} should beat uniform {uniform}"
        );
    }

    #[test]
    fn empty_corpus_rejected() {
        let texts: Vec<String> = vec!["a b c d e".to_string()];
        let task_encoder = TaskEncoder::fit_on_texts(&texts, 50, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc_cfg = EncoderConfig {
            vocab: task_encoder.vocab.len(),
            dim: 8,
            layers: 1,
            heads: 1,
            ffn_dim: 16,
            max_len: 8,
            dropout: 0.0,
            positions: PositionMode::Absolute,
        };
        let encoder = Encoder::new(&mut store, "enc", enc_cfg, &mut rng);
        let head = MlmHead::new(&mut store, "mlm", 8, task_encoder.vocab.len(), &mut rng);
        assert!(mlm_pretrain(
            &encoder,
            &head,
            &mut store,
            &task_encoder,
            &[],
            &PretrainConfig::default(),
            4
        )
        .is_err());
    }
}
