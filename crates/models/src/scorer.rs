//! The inference-only scoring entry point: a fitted feature extractor +
//! booster pair with no training tape, reusable feature scratch buffers,
//! and a micro-batched batch API on the `rsd-par` pool.
//!
//! [`ScoringModel::fit`] is the *exact* training path of the table-3
//! XGBoost baseline (same augmentation, TF-IDF fit, binning, early
//! stopping, seed), factored out of
//! [`XgboostBaseline::run`](crate::xgboost::XgboostBaseline) so the batch
//! benchmark and the online serving path share one fitted artifact.
//! Per-row prediction reads raw feature rows
//! ([`Booster::predict_row`]), so [`score_windows`] over the test split
//! is bit-identical to the baseline's `predict` over the binned test
//! matrix.
//!
//! [`score_windows`]: ScoringModel::score_windows

use rsd_common::{Result, Timestamp};
use rsd_dataset::{Rsd15k, UserWindow};
use rsd_features::FeatureExtractor;
use rsd_gbdt::{BinnedMatrix, Booster};

use crate::trainer::{augment_train_windows, BenchData};
use crate::xgboost::XgboostConfig;

/// Reusable per-worker scratch for streaming scoring: one feature row,
/// reused across requests to avoid per-request allocation.
#[derive(Default)]
pub struct ScoreScratch {
    row: Vec<f32>,
}

/// A fitted extractor + booster pair, stripped to what inference needs.
pub struct ScoringModel {
    extractor: FeatureExtractor,
    booster: Booster,
    window: usize,
}

impl ScoringModel {
    /// Fit on the bench data — the table-3 XGBoost training path,
    /// verbatim: post-level augmentation of the train split, TF-IDF fit
    /// on the augmented windows, 64-bin histograms, early stopping on
    /// the validation split, seed from the bench data.
    pub fn fit(cfg: &XgboostConfig, data: &BenchData<'_>) -> Result<ScoringModel> {
        let mut cfg = cfg.clone();
        cfg.booster.seed = data.seed;

        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.post_level_cap,
        );
        let extractor = FeatureExtractor::fit(data.dataset, &train_windows, cfg.max_tfidf)?;
        let x_train = extractor.transform_all(data.dataset, &train_windows);
        let y_train: Vec<usize> = train_windows.iter().map(|w| w.label.index()).collect();
        let x_valid = extractor.transform_all(data.dataset, &data.splits.valid);
        let y_valid: Vec<usize> = data.splits.valid.iter().map(|w| w.label.index()).collect();

        let train = BinnedMatrix::fit(x_train, 64)?;
        let valid = train.transform(x_valid)?;
        let booster = Booster::fit(&train, &y_train, Some((&valid, &y_valid)), cfg.booster)?;

        Ok(ScoringModel {
            extractor,
            booster,
            window: data.splits.config.window,
        })
    }

    /// The fitted feature extractor.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The fitted booster.
    pub fn booster(&self) -> &Booster {
        &self.booster
    }

    /// The window size the model was fitted for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Score a batch of windows, micro-batched on the `rsd-par` pool
    /// with one reused scratch row per chunk. Returns predicted class
    /// indices, aligned with `windows`. Per-row work is self-contained,
    /// so results are bit-identical across thread counts and chunk
    /// boundaries — and identical to the baseline's binned-matrix
    /// `predict`, which also reads raw rows.
    pub fn score_windows(&self, dataset: &Rsd15k, windows: &[UserWindow]) -> Vec<usize> {
        let mut preds = vec![0usize; windows.len()];
        rsd_par::parallel_chunks_mut(&mut preds, 16, |start, chunk| {
            let mut scratch = ScoreScratch::default();
            for (off, slot) in chunk.iter_mut().enumerate() {
                let w = &windows[start + off];
                self.extractor.transform_into(dataset, w, &mut scratch.row);
                *slot = self.booster.predict_row(&scratch.row);
            }
        });
        preds
    }

    /// Score one streaming request: the caller supplies the window
    /// reconstructed from its per-user state (`texts`/`timestamps`
    /// chronological, `total_posts` = posts ever seen for the user) and
    /// a reusable scratch. Returns the predicted class index.
    pub fn score_stream(
        &self,
        texts: &[&str],
        timestamps: &[Timestamp],
        total_posts: usize,
        scratch: &mut ScoreScratch,
    ) -> usize {
        self.extractor
            .transform_stream_into(texts, timestamps, total_posts, &mut scratch.row);
        self.booster.predict_row(&scratch.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
    use rsd_gbdt::BoosterConfig;

    fn small_cfg() -> XgboostConfig {
        XgboostConfig {
            max_tfidf: 80,
            post_level_cap: 3,
            booster: BoosterConfig {
                n_classes: 4,
                n_rounds: 12,
                early_stopping: 0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(31, 2_000, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 31,
        };
        let model = ScoringModel::fit(&small_cfg(), &data).unwrap();
        let batch = model.score_windows(&dataset, &splits.test);
        let mut scratch = ScoreScratch::default();
        for (w, &expect) in splits.test.iter().zip(&batch) {
            let texts: Vec<&str> = w
                .post_indices
                .iter()
                .map(|&i| dataset.posts[i].text.as_str())
                .collect();
            let total = dataset
                .users
                .iter()
                .find(|u| u.id == w.user)
                .map(|u| u.post_indices.len())
                .unwrap();
            let got = model.score_stream(&texts, &w.timestamps, total, &mut scratch);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn score_windows_is_thread_count_invariant() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(32, 2_000, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 32,
        };
        let model = ScoringModel::fit(&small_cfg(), &data).unwrap();
        let t1 = rsd_par::with_local_pool(1, || model.score_windows(&dataset, &splits.test));
        let t4 = rsd_par::with_local_pool(4, || model.score_windows(&dataset, &splits.test));
        assert_eq!(t1, t4);
    }
}
