//! The inference-only scoring entry point: a fitted artifact with no
//! training tape, reusable scratch buffers, and a micro-batched batch
//! API on the `rsd-par` pool — now routable across three backends.
//!
//! [`ServeModel`] selects the backend via `RSD_SERVE_MODEL`
//! (`gbdt | plm-f32 | plm-int8`, hard-erroring on anything else):
//!
//! * `gbdt` — [`ScoringModel::fit`] is the *exact* training path of the
//!   table-3 XGBoost baseline (same augmentation, TF-IDF fit, binning,
//!   early stopping, seed), factored out of
//!   [`XgboostBaseline::run`](crate::xgboost::XgboostBaseline) so the
//!   batch benchmark and the online serving path share one fitted
//!   artifact. Per-row prediction reads raw feature rows
//!   ([`Booster::predict_row`]), so [`score_windows`] over the test
//!   split is bit-identical to the baseline's `predict` over the binned
//!   test matrix.
//! * `plm-f32` — a trained PLM frozen through
//!   [`PlmInferenceModel`](crate::plm_infer::PlmInferenceModel), scored
//!   on the tape-free f32 reference path (bit-identical to the tape).
//! * `plm-int8` — the same frozen artifact on the per-channel int8
//!   kernels: the fast path, gated against `plm-f32` by the quality
//!   epsilon knobs (`RSD_QUANT_EPS`, `RSD_QUANT_MIN_AGREE`).
//!
//! [`score_windows`]: ScoringModel::score_windows

use rsd_common::{Result, RsdError, Timestamp};
use rsd_dataset::{Rsd15k, UserWindow};
use rsd_features::FeatureExtractor;
use rsd_gbdt::{BinnedMatrix, Booster};

use crate::plm::FittedPlm;
use crate::plm_infer::{PlmInferenceModel, PlmScratch};
use crate::trainer::{augment_train_windows, BenchData};
use crate::xgboost::XgboostConfig;

/// Which scoring backend serves requests (`RSD_SERVE_MODEL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeModel {
    /// The table-3 XGBoost artifact (feature extractor + booster).
    Gbdt,
    /// Frozen PLM on the f32 reference inference path.
    PlmF32,
    /// Frozen PLM on the per-channel int8 fast path.
    PlmInt8,
}

impl ServeModel {
    /// The env knob that selects the backend.
    pub const KNOB: &'static str = "RSD_SERVE_MODEL";
    /// Valid knob spellings, in [`ServeModel`] declaration order.
    pub const CHOICES: &'static [&'static str] = &["gbdt", "plm-f32", "plm-int8"];

    /// Resolve from `RSD_SERVE_MODEL`. Unset defaults to `gbdt`; a set
    /// but unknown value aborts naming the knob and the valid spellings.
    pub fn from_env() -> ServeModel {
        Self::from_name(rsd_obs::knob::choice_env(Self::KNOB, Self::CHOICES, "gbdt"))
            .expect("choice_env only returns listed spellings")
    }

    /// Parse one of the [`Self::CHOICES`] spellings.
    pub fn from_name(name: &str) -> Result<ServeModel> {
        match name {
            "gbdt" => Ok(ServeModel::Gbdt),
            "plm-f32" => Ok(ServeModel::PlmF32),
            "plm-int8" => Ok(ServeModel::PlmInt8),
            other => Err(RsdError::config(
                Self::KNOB,
                format!(
                    "unknown model {other:?}; expected one of {}",
                    Self::CHOICES.join(" | ")
                ),
            )),
        }
    }

    /// The canonical knob spelling.
    pub fn name(self) -> &'static str {
        Self::CHOICES[self as usize]
    }

    /// Whether this backend runs the int8 quantized kernels.
    pub fn quantized(self) -> bool {
        self == ServeModel::PlmInt8
    }

    /// Whether this backend scores with the frozen PLM.
    pub fn is_plm(self) -> bool {
        self != ServeModel::Gbdt
    }
}

/// Reusable per-worker scratch for streaming scoring: one feature row
/// for the GBDT backend plus the PLM activation buffers, reused across
/// requests to avoid per-request allocation.
#[derive(Default)]
pub struct ScoreScratch {
    row: Vec<f32>,
    plm: PlmScratch,
}

enum Backend {
    Gbdt {
        extractor: FeatureExtractor,
        booster: Booster,
    },
    Plm {
        engine: PlmInferenceModel,
        quantized: bool,
    },
}

/// A fitted scoring artifact, stripped to what inference needs.
pub struct ScoringModel {
    backend: Backend,
    window: usize,
}

impl ScoringModel {
    /// Fit the GBDT backend on the bench data — the table-3 XGBoost
    /// training path, verbatim: post-level augmentation of the train
    /// split, TF-IDF fit on the augmented windows, 64-bin histograms,
    /// early stopping on the validation split, seed from the bench data.
    pub fn fit(cfg: &XgboostConfig, data: &BenchData<'_>) -> Result<ScoringModel> {
        let mut cfg = cfg.clone();
        cfg.booster.seed = data.seed;

        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.post_level_cap,
        );
        let extractor = FeatureExtractor::fit(data.dataset, &train_windows, cfg.max_tfidf)?;
        let x_train = extractor.transform_all(data.dataset, &train_windows);
        let y_train: Vec<usize> = train_windows.iter().map(|w| w.label.index()).collect();
        let x_valid = extractor.transform_all(data.dataset, &data.splits.valid);
        let y_valid: Vec<usize> = data.splits.valid.iter().map(|w| w.label.index()).collect();

        let train = BinnedMatrix::fit(x_train, 64)?;
        let valid = train.transform(x_valid)?;
        let booster = Booster::fit(&train, &y_train, Some((&valid, &y_valid)), cfg.booster)?;

        Ok(ScoringModel {
            backend: Backend::Gbdt { extractor, booster },
            window: data.splits.config.window,
        })
    }

    /// Wrap a trained PLM as the serving artifact: freeze its weights
    /// through [`PlmInferenceModel::export`] and score on the f32
    /// reference path or the int8 fast path per `quantized`.
    pub fn from_plm(fitted: &FittedPlm, window: usize, quantized: bool) -> ScoringModel {
        ScoringModel {
            backend: Backend::Plm {
                engine: PlmInferenceModel::export(fitted),
                quantized,
            },
            window,
        }
    }

    /// Which backend this artifact scores with.
    pub fn model(&self) -> ServeModel {
        match &self.backend {
            Backend::Gbdt { .. } => ServeModel::Gbdt,
            Backend::Plm {
                quantized: false, ..
            } => ServeModel::PlmF32,
            Backend::Plm {
                quantized: true, ..
            } => ServeModel::PlmInt8,
        }
    }

    /// The fitted feature extractor (GBDT backend only).
    ///
    /// # Panics
    /// If this artifact scores with the PLM backend.
    pub fn extractor(&self) -> &FeatureExtractor {
        match &self.backend {
            Backend::Gbdt { extractor, .. } => extractor,
            Backend::Plm { .. } => panic!("extractor(): PLM backend has no feature extractor"),
        }
    }

    /// The fitted booster (GBDT backend only).
    ///
    /// # Panics
    /// If this artifact scores with the PLM backend.
    pub fn booster(&self) -> &Booster {
        match &self.backend {
            Backend::Gbdt { booster, .. } => booster,
            Backend::Plm { .. } => panic!("booster(): PLM backend has no booster"),
        }
    }

    /// The frozen PLM inference engine (PLM backends only).
    pub fn plm_engine(&self) -> Option<&PlmInferenceModel> {
        match &self.backend {
            Backend::Gbdt { .. } => None,
            Backend::Plm { engine, .. } => Some(engine),
        }
    }

    /// The window size the model was fitted for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Score a batch of windows, micro-batched on the `rsd-par` pool
    /// with one reused scratch per chunk. Returns predicted class
    /// indices, aligned with `windows`. Per-row work is self-contained,
    /// so results are bit-identical across thread counts and chunk
    /// boundaries — for the GBDT backend also identical to the
    /// baseline's binned-matrix `predict`, which reads the same raw
    /// rows; for the int8 backend identical across batch partitionings
    /// because integer accumulation is exact.
    pub fn score_windows(&self, dataset: &Rsd15k, windows: &[UserWindow]) -> Vec<usize> {
        let mut preds = vec![0usize; windows.len()];
        rsd_par::parallel_chunks_mut(&mut preds, 16, |start, chunk| {
            let mut scratch = ScoreScratch::default();
            for (off, slot) in chunk.iter_mut().enumerate() {
                let w = &windows[start + off];
                *slot = match &self.backend {
                    Backend::Gbdt { extractor, booster } => {
                        extractor.transform_into(dataset, w, &mut scratch.row);
                        booster.predict_row(&scratch.row)
                    }
                    Backend::Plm { engine, quantized } => {
                        let encoded = engine.encoder().encode(dataset, w);
                        engine.score(&encoded, *quantized, &mut scratch.plm)
                    }
                };
            }
        });
        preds
    }

    /// Score one streaming request: the caller supplies the window
    /// reconstructed from its per-user state (`texts`/`timestamps`
    /// chronological, `total_posts` = posts ever seen for the user) and
    /// a reusable scratch. Returns the predicted class index.
    pub fn score_stream(
        &self,
        texts: &[&str],
        timestamps: &[Timestamp],
        total_posts: usize,
        scratch: &mut ScoreScratch,
    ) -> usize {
        match &self.backend {
            Backend::Gbdt { extractor, booster } => {
                extractor.transform_stream_into(texts, timestamps, total_posts, &mut scratch.row);
                booster.predict_row(&scratch.row)
            }
            Backend::Plm { engine, quantized } => {
                let encoded = engine.encode_stream(texts, timestamps);
                engine.score(&encoded, *quantized, &mut scratch.plm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plm::{PlmConfig, PlmKind};
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
    use rsd_gbdt::BoosterConfig;

    fn small_cfg() -> XgboostConfig {
        XgboostConfig {
            max_tfidf: 80,
            post_level_cap: 3,
            booster: BoosterConfig {
                n_classes: 4,
                n_rounds: 12,
                early_stopping: 0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn serve_model_spellings_round_trip() {
        for (&spelling, model) in ServeModel::CHOICES.iter().zip([
            ServeModel::Gbdt,
            ServeModel::PlmF32,
            ServeModel::PlmInt8,
        ]) {
            assert_eq!(ServeModel::from_name(spelling).unwrap(), model);
            assert_eq!(model.name(), spelling);
        }
        assert!(ServeModel::from_name("xgboost").is_err());
        assert!(ServeModel::PlmInt8.quantized());
        assert!(!ServeModel::PlmF32.quantized());
        assert!(!ServeModel::Gbdt.is_plm());
    }

    #[test]
    fn stream_scoring_matches_batch_scoring() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(31, 2_000, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 31,
        };
        let model = ScoringModel::fit(&small_cfg(), &data).unwrap();
        assert_eq!(model.model(), ServeModel::Gbdt);
        let batch = model.score_windows(&dataset, &splits.test);
        let mut scratch = ScoreScratch::default();
        for (w, &expect) in splits.test.iter().zip(&batch) {
            let texts: Vec<&str> = w
                .post_indices
                .iter()
                .map(|&i| dataset.posts[i].text.as_str())
                .collect();
            let total = dataset
                .users
                .iter()
                .find(|u| u.id == w.user)
                .map(|u| u.post_indices.len())
                .unwrap();
            let got = model.score_stream(&texts, &w.timestamps, total, &mut scratch);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn plm_stream_scoring_matches_batch_scoring_both_paths() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(33, 2_000, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let cfg = PlmConfig {
            max_vocab: 300,
            max_tokens: 10,
            window_tokens: 20,
            dim: 16,
            layers: 1,
            heads: 2,
            ffn_dim: 32,
            radius: 4,
            ..PlmConfig::base(PlmKind::Deberta)
        };
        let fitted = FittedPlm::synthetic(cfg, 33);
        for quantized in [false, true] {
            let model = ScoringModel::from_plm(&fitted, splits.config.window, quantized);
            assert_eq!(
                model.model(),
                if quantized {
                    ServeModel::PlmInt8
                } else {
                    ServeModel::PlmF32
                }
            );
            let windows = &splits.test[..splits.test.len().min(12)];
            let batch = model.score_windows(&dataset, windows);
            let mut scratch = ScoreScratch::default();
            for (w, &expect) in windows.iter().zip(&batch) {
                let texts: Vec<&str> = w
                    .post_indices
                    .iter()
                    .map(|&i| dataset.posts[i].text.as_str())
                    .collect();
                let got = model.score_stream(&texts, &w.timestamps, 0, &mut scratch);
                assert_eq!(got, expect, "quantized={quantized}");
            }
        }
    }

    #[test]
    fn score_windows_is_thread_count_invariant() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(32, 2_000, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 32,
        };
        let model = ScoringModel::fit(&small_cfg(), &data).unwrap();
        let t1 = rsd_par::with_local_pool(1, || model.score_windows(&dataset, &splits.test));
        let t4 = rsd_par::with_local_pool(4, || model.score_windows(&dataset, &splits.test));
        assert_eq!(t1, t4);
    }
}
