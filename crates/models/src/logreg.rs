//! Logistic-regression reference baseline (extension).
//!
//! Not one of the paper's five baselines — included as the standard
//! "simplest learner on the same features" control for the benchmark: a
//! single softmax layer over the XGBoost feature framework. Where the GBDT
//! can carve feature interactions, this cannot, so the gap between the two
//! measures how much of the signal is non-linear.

use rand::rngs::StdRng;

use crate::encoding::EncodedWindow;
use crate::trainer::{
    augment_train_windows, outcome_from_confusion, BenchData, EvalOutcome, TrainConfig,
};
use rsd_common::rng::{shuffle, stream_rng};
use rsd_common::Result;
use rsd_corpus::RiskLevel;
use rsd_eval::ConfusionMatrix;
use rsd_features::FeatureExtractor;
use rsd_nn::layers::Linear;
use rsd_nn::loss::argmax_rows;
use rsd_nn::matrix::Matrix;
use rsd_nn::{Adam, Optimizer, ParamStore, Tape};

/// Configuration for the logistic-regression baseline.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// TF-IDF feature cap (shared with the XGBoost extractor).
    pub max_tfidf: usize,
    /// Post-level training expansion cap.
    pub post_level_cap: usize,
    /// Training loop settings (epochs/lr/batch are used).
    pub train: TrainConfig,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            max_tfidf: 300,
            post_level_cap: 6,
            train: TrainConfig {
                epochs: 20,
                lr: 5e-2,
                ..Default::default()
            },
            weight_decay: 1e-4,
        }
    }
}

/// The runnable baseline.
pub struct LogRegBaseline {
    cfg: LogRegConfig,
}

impl LogRegBaseline {
    /// Create with configuration.
    pub fn new(cfg: LogRegConfig) -> Self {
        LogRegBaseline { cfg }
    }

    /// Train on the bench data and evaluate on its test split.
    pub fn run(&self, data: &BenchData<'_>) -> Result<EvalOutcome> {
        let cfg = &self.cfg;
        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.post_level_cap,
        );
        let extractor = FeatureExtractor::fit(data.dataset, &train_windows, cfg.max_tfidf)?;
        let x_train = standardize_fit(&extractor.transform_all(data.dataset, &train_windows));
        let (x_train, stats) = x_train;
        let y_train: Vec<usize> = train_windows.iter().map(|w| w.label.index()).collect();
        let x_test = standardize_apply(
            &extractor.transform_all(data.dataset, &data.splits.test),
            &stats,
        );
        let y_test: Vec<usize> = data.splits.test.iter().map(|w| w.label.index()).collect();

        let mut rng = stream_rng(data.seed, "logreg.init");
        let mut store = ParamStore::new();
        let layer = Linear::new(
            &mut store,
            "logreg",
            extractor.dim(),
            RiskLevel::COUNT,
            &mut rng,
        );
        let mut opt = Adam::with_weight_decay(cfg.train.lr, cfg.weight_decay);

        let mut order: Vec<usize> = (0..x_train.len()).collect();
        let mut epoch_rng: StdRng = stream_rng(data.seed, "logreg.epochs");
        for _ in 0..cfg.train.epochs {
            shuffle(&mut epoch_rng, &mut order);
            let mut in_batch = 0;
            for &i in &order {
                let mut tape = Tape::new();
                let x = tape.constant(Matrix::row_vec(x_train[i].clone()));
                let logits = layer.forward(&mut tape, &store, x);
                let loss = tape.cross_entropy(logits, &[y_train[i]]);
                tape.backward(loss);
                tape.harvest_grads(&mut store);
                in_batch += 1;
                if in_batch >= cfg.train.batch {
                    store.scale_grads(1.0 / in_batch as f32);
                    opt.step(&mut store);
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                store.scale_grads(1.0 / in_batch as f32);
                opt.step(&mut store);
            }
        }

        let mut confusion = ConfusionMatrix::new(RiskLevel::COUNT);
        for (x, &y) in x_test.iter().zip(&y_test) {
            let mut tape = Tape::inference();
            let xv = tape.constant(Matrix::row_vec(x.clone()));
            let logits = layer.forward(&mut tape, &store, xv);
            confusion.record(y, argmax_rows(tape.value(logits))[0])?;
        }
        let extra = vec![("features".to_string(), extractor.dim().to_string())];
        Ok(outcome_from_confusion("LogReg", confusion, extra))
    }
}

/// Per-feature mean/std computed on training rows.
type Standardization = (Vec<f32>, Vec<f32>);

fn standardize_fit(rows: &[Vec<f32>]) -> (Vec<Vec<f32>>, Standardization) {
    let dim = rows.first().map_or(0, Vec::len);
    let n = rows.len().max(1) as f32;
    let mut mean = vec![0.0f32; dim];
    for r in rows {
        for (m, &v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0f32; dim];
    for r in rows {
        for ((s, &v), &m) in std.iter_mut().zip(r).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt().max(1e-6);
    }
    let stats = (mean, std);
    let out = standardize_apply(rows, &stats);
    (out, stats)
}

fn standardize_apply(rows: &[Vec<f32>], stats: &Standardization) -> Vec<Vec<f32>> {
    let (mean, std) = stats;
    rows.iter()
        .map(|r| {
            r.iter()
                .zip(mean)
                .zip(std)
                .map(|((&v, &m), &s)| (v - m) / s)
                .collect()
        })
        .collect()
}

// Silence the unused-field warning path: the encoding module is shared.
#[allow(dead_code)]
fn _doc_anchor(_: &EncodedWindow) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    #[test]
    fn trains_and_beats_uniform_chance() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(1201, 2_500, 40))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 1201,
        };
        let cfg = LogRegConfig {
            max_tfidf: 100,
            post_level_cap: 4,
            train: TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = LogRegBaseline::new(cfg).run(&data).unwrap();
        assert_eq!(outcome.report.model, "LogReg");
        assert!(
            outcome.report.accuracy >= 0.25,
            "acc {}",
            outcome.report.accuracy
        );
    }

    #[test]
    fn standardization_zero_mean_unit_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let (out, (mean, std)) = standardize_fit(&rows);
        assert!((mean[0] - 3.0).abs() < 1e-6);
        assert!((mean[1] - 30.0).abs() < 1e-6);
        for d in 0..2 {
            let m: f32 = out.iter().map(|r| r[d]).sum::<f32>() / 3.0;
            assert!(m.abs() < 1e-6);
        }
        assert!(std[0] > 0.0 && std[1] > 0.0);
    }
}
