#![warn(missing_docs)]

//! The five RSD-15K baselines (paper §III) and their training machinery.
//!
//! | Baseline | Paper §III-A | Here |
//! |---|---|---|
//! | XGBoost | multi-level feature framework + GBDT | [`xgboost`] over `rsd-features` + `rsd-gbdt` |
//! | BiLSTM | time-aware BiLSTM with pre-encoder attention fusion | [`bilstm`] |
//! | HiGRU | hierarchical GRU with time-aware attention | [`higru`] |
//! | RoBERTa | fine-tuned PLM + temporal attention | [`plm`] with absolute positions, MLM-pretrained |
//! | DeBERTa | disentangled attention + relative positions | [`plm`] with relative positions, MLM-pretrained |
//!
//! Shared infrastructure:
//!
//! * [`encoding`] — task encoding: windows → token ids + multi-dimensional
//!   temporal feature vectors (periodic hour/weekday/month encodings,
//!   interval and cumulative features — §III-A2's "three multi-dimensional
//!   encoding strategies").
//! * [`pretrain`] — in-domain masked-language-model pretraining on the
//!   unlabelled pool; this substitutes for public PLM checkpoints and is
//!   what gives the transformer baselines their "pretrained" advantage.
//! * [`trainer`] — the shared supervised loop: Adam, minibatch gradient
//!   accumulation, gradient clipping, early stopping on validation
//!   macro-F1, deterministic seeding.
//! * [`scale`] — the Table IV data-scale study (Large+tuning on 500 users
//!   vs Base+defaults on the full set).
//! * [`scorer`] — the inference-only [`ScoringModel`]: the XGBoost
//!   baseline's fitted extractor + booster with reusable scratch buffers
//!   and a streaming entry point; the artifact `rsd-serve` scores with.

pub mod bilstm;
pub mod encoding;
pub mod higru;
pub mod logreg;
pub mod plm;
pub mod plm_infer;
pub mod pretrain;
pub mod scale;
pub mod scorer;
pub mod trainer;
pub mod xgboost;

pub use bilstm::{BiLstmBaseline, BiLstmConfig};
pub use encoding::{EncodedWindow, TaskEncoder, TIME_FEATURE_DIM};
pub use higru::{HiGruBaseline, HiGruConfig};
pub use logreg::{LogRegBaseline, LogRegConfig};
pub use plm::{FittedPlm, PlmBaseline, PlmConfig, PlmKind};
pub use plm_infer::{PlmInferenceModel, PlmScratch};
pub use scorer::{ScoreScratch, ScoringModel, ServeModel};
pub use trainer::{BenchData, EvalOutcome, TrainConfig};
pub use xgboost::{XgboostBaseline, XgboostConfig};
