//! The Table IV data-scale study.
//!
//! "In the small-scale dataset experiment, we used the DeBERTa-Large model
//! to train on 500 annotated data, and adopted techniques such as
//! hyperparameter optimization, data balance sampling, and model
//! adjustment ... In contrast, on the large-scale dataset ... even using
//! the DeBERTa-Base model with fewer parameters and without any
//! hyperparameter adjustment or data balancing, it still achieved ..."
//!
//! [`run_scale_study`] reproduces both arms on one built dataset: a
//! 500-user (paper: the prior work's 500-user scale) subsample with the
//! Large configuration and full optimization, versus the full dataset with
//! the Base configuration and defaults.

use serde::{Deserialize, Serialize};

use crate::plm::{PlmBaseline, PlmConfig};
use crate::trainer::BenchData;
use rsd_common::rng::{shuffle, stream_rng};
use rsd_common::{Result, RsdError};
use rsd_corpus::RiskLevel;
use rsd_dataset::{DatasetSplits, Rsd15k, SplitConfig};

/// One row of Table IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Data arm label ("500" / "15K").
    pub data: String,
    /// Model arm label ("Large" / "Base").
    pub model: String,
    /// Whether full optimization (tuning + balancing) was applied.
    pub optimized: bool,
    /// Per-class F1, ordered IN / ID / BR / AT.
    pub class_f1: [f64; 4],
    /// Macro F1.
    pub macro_f1: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// Scalar parameter count of the trained model.
    pub params: usize,
}

/// Subsample a dataset to `n_users` (complete timelines kept).
pub fn subsample_users(dataset: &Rsd15k, n_users: usize, seed: u64) -> Result<Rsd15k> {
    if n_users == 0 || n_users > dataset.n_users() {
        return Err(RsdError::config(
            "n_users",
            format!("must be in 1..={}", dataset.n_users()),
        ));
    }
    let mut order: Vec<usize> = (0..dataset.n_users()).collect();
    let mut rng = stream_rng(seed, "scale.subsample");
    shuffle(&mut rng, &mut order);
    order.truncate(n_users);
    order.sort_unstable();

    let mut posts = Vec::new();
    let mut users = Vec::new();
    for (new_uid, &uidx) in order.iter().enumerate() {
        let user = &dataset.users[uidx];
        let mut indices = Vec::with_capacity(user.post_indices.len());
        for &pidx in &user.post_indices {
            let mut post = dataset.posts[pidx].clone();
            post.id = rsd_corpus::PostId(posts.len() as u32);
            post.user = rsd_corpus::UserId(new_uid as u32);
            indices.push(posts.len());
            posts.push(post);
        }
        users.push(rsd_dataset::UserRecord {
            id: rsd_corpus::UserId(new_uid as u32),
            post_indices: indices,
        });
    }
    let sub = Rsd15k {
        posts,
        users,
        seed: dataset.seed,
    };
    sub.validate()?;
    Ok(sub)
}

/// Run both arms of Table IV. `small_users` is the small arm's user count
/// (paper: 500); configs may be overridden for scaled-down runs.
pub fn run_scale_study(
    dataset: &Rsd15k,
    unlabeled: &[String],
    small_users: usize,
    large_cfg: PlmConfig,
    base_cfg: PlmConfig,
    seed: u64,
) -> Result<Vec<ScaleRow>> {
    // Arm 1: small data, Large model, full optimization.
    let small = subsample_users(dataset, small_users.min(dataset.n_users()), seed)?;
    let small_splits = DatasetSplits::new(
        &small,
        SplitConfig {
            seed,
            ..Default::default()
        },
    )?;
    let small_data = BenchData {
        dataset: &small,
        splits: &small_splits,
        unlabeled,
        seed,
    };
    let large_outcome = PlmBaseline::new(large_cfg).run(&small_data)?;

    // Arm 2: full data, Base model, no optimization.
    let full_splits = DatasetSplits::new(
        dataset,
        SplitConfig {
            seed,
            ..Default::default()
        },
    )?;
    let full_data = BenchData {
        dataset,
        splits: &full_splits,
        unlabeled,
        seed,
    };
    let base_outcome = PlmBaseline::new(base_cfg).run(&full_data)?;

    let row = |label: &str, model: &str, optimized: bool, outcome: &crate::trainer::EvalOutcome| {
        let f1 = |l: RiskLevel| outcome.report.class_f1[l.index()];
        ScaleRow {
            data: label.to_string(),
            model: model.to_string(),
            optimized,
            class_f1: [
                f1(RiskLevel::Indicator),
                f1(RiskLevel::Ideation),
                f1(RiskLevel::Behavior),
                f1(RiskLevel::Attempt),
            ],
            macro_f1: outcome.report.macro_f1,
            accuracy: outcome.report.accuracy,
            params: outcome
                .extra
                .iter()
                .find(|(k, _)| k == "params")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0),
        }
    };

    Ok(vec![
        row(&small_users.to_string(), "Large", true, &large_outcome),
        row("full", "Base", false, &base_outcome),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder};

    #[test]
    fn subsample_preserves_structure() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(901, 1_500, 30))
            .build()
            .unwrap();
        let sub = subsample_users(&d, 10, 901).unwrap();
        assert_eq!(sub.n_users(), 10);
        sub.validate().unwrap();
        assert!(sub.n_posts() < d.n_posts());
        assert!(subsample_users(&d, 0, 1).is_err());
        assert!(subsample_users(&d, 999, 1).is_err());
    }

    #[test]
    fn subsample_is_deterministic() {
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(902, 1_500, 30))
            .build()
            .unwrap();
        let a = subsample_users(&d, 12, 7).unwrap();
        let b = subsample_users(&d, 12, 7).unwrap();
        assert_eq!(a, b);
        let c = subsample_users(&d, 12, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn scale_study_produces_two_rows() {
        use crate::plm::PlmKind;
        use crate::pretrain::PretrainConfig;
        use crate::trainer::TrainConfig;
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(903, 1_500, 30))
            .build()
            .unwrap();
        let tiny = |balanced: bool| PlmConfig {
            kind: PlmKind::Deberta,
            max_vocab: 200,
            max_tokens: 8,
            window_tokens: 12,
            dim: 8,
            layers: 1,
            heads: 2,
            ffn_dim: 16,
            dropout: 0.0,
            radius: 4,
            pretrain_texts: 0,
            temporal_fusion: true,
            pretrain: PretrainConfig::default(),
            train: TrainConfig {
                epochs: 1,
                batch: 8,
                patience: 0,
                balanced,
                ..Default::default()
            },
        };
        let rows = run_scale_study(&d, &[], 15, tiny(true), tiny(false), 903).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].model, "Large");
        assert!(rows[0].optimized);
        assert_eq!(rows[1].data, "full");
        assert!(!rows[1].optimized);
    }
}
