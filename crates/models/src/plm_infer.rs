//! Frozen-weight PLM inference: the tape-free f32 reference engine and
//! the per-channel int8 fast path.
//!
//! [`PlmInferenceModel::export`] snapshots a trained
//! [`FittedPlm`](crate::plm::FittedPlm) through
//! [`rsd_nn::infer::InferenceModel`] — weights only, no tape, no
//! optimizer state — and precomputes everything inference can hoist:
//! the DeBERTa relative tables projected through the shared content
//! projections, and per-channel symmetric int8 views of every linear,
//! embedding and attention-projection weight
//! ([`rsd_nn::quant::QuantizedMatrix`]).
//!
//! Two execution paths share the export:
//!
//! * **f32** ([`PlmInferenceModel::logits_f32`]) replicates the tape's
//!   forward arithmetic op for op — same kernels, same accumulation
//!   order — so its logits are *bit-identical* to `Tape::inference` on
//!   the same weights (pinned by tests). It is the quality reference
//!   the int8 path is gated against.
//! * **int8** ([`PlmInferenceModel::logits_i8`]) quantizes activations
//!   dynamically per row and runs every GEMM — projections, FFN,
//!   attention scores, attention×value — on the i8×i8→i32 kernels,
//!   with fast polynomial transcendentals for softmax/GELU. Integer
//!   accumulation is exact, so results are bitwise reproducible across
//!   hosts, thread counts and batch partitionings.
//!
//! Batched scoring fans windows out on the rsd-par pool with one
//! scratch per chunk, mirroring the GBDT scorer; per-window results
//! never depend on the partitioning.

use rsd_common::Timestamp;
use rsd_corpus::RiskLevel;
use rsd_nn::infer::{self, InferenceModel};
use rsd_nn::matrix::Matrix;
use rsd_nn::quant::{
    gemv2_i8_pairs, gemv_i8_pairs, pack_pair, qgemm_nt, quantize_row_i8, softmax_q7,
    QuantizedMatrix,
};

use crate::encoding::{time_vector, EncodedWindow, TaskEncoder, TIME_FEATURE_DIM};
use crate::plm::{FittedPlm, PlmKind};

/// One linear layer's frozen f32 weights (`in × out` plus `1 × out`
/// bias, the [`rsd_nn::layers::Linear`] layout).
#[derive(Debug, Clone)]
struct LinW {
    w: Matrix,
    b: Matrix,
}

impl LinW {
    fn from(im: &InferenceModel, name: &str) -> LinW {
        LinW {
            w: im.weight(&format!("{name}.w")).clone(),
            b: im.weight(&format!("{name}.b")).clone(),
        }
    }
}

/// DeBERTa relative-position machinery, projected once at export time:
/// the tape recomputes `wq(rel)` / `wk(rel)` every forward, but they
/// depend only on weights.
#[derive(Debug, Clone)]
struct RelW {
    /// `wq(rel_table)` — (2r+1) × dim.
    qr: Matrix,
    /// `wk(rel_table)` — (2r+1) × dim.
    kr: Matrix,
    qr_q: QuantizedMatrix,
    kr_q: QuantizedMatrix,
    /// Per-head pair-interleaved layouts for [`gemv_i8_pairs`]
    /// (head-major: `heads × pairs × 2·(2r+1)` bytes each).
    qr_pairs: Vec<i8>,
    kr_pairs: Vec<i8>,
}

/// Pair-interleave the per-head column slices of quantized rows for
/// [`gemv_i8_pairs`]: block `h` holds `pairs` rows of `2·n` bytes, row
/// `p` interleaving channels `h·hd + 2p` and `h·hd + 2p + 1` (zero for a
/// trailing odd channel) across all `n` source rows.
fn pack_head_pairs(q: &QuantizedMatrix, heads: usize, hd: usize) -> Vec<i8> {
    let n = q.rows();
    let pairs = hd.div_ceil(2);
    let mut out = vec![0i8; heads * pairs * 2 * n];
    for h in 0..heads {
        for p in 0..pairs {
            let row = &mut out[(h * pairs + p) * 2 * n..(h * pairs + p + 1) * 2 * n];
            for j in 0..n {
                let d0 = h * hd + 2 * p;
                row[2 * j] = q.row(j)[d0];
                row[2 * j + 1] = if 2 * p + 1 < hd { q.row(j)[d0 + 1] } else { 0 };
            }
        }
    }
    out
}

/// Pack one activation row's head slice into [`pack_pair`] words.
#[inline]
fn fill_pairs(head_slice: &[i8], out: &mut [i32]) {
    let hd = head_slice.len();
    for (p, slot) in out.iter_mut().enumerate() {
        let odd = if 2 * p + 1 < hd {
            head_slice[2 * p + 1]
        } else {
            0
        };
        *slot = pack_pair(head_slice[2 * p], odd);
    }
}

/// One encoder block's frozen weights, f32 and int8 views side by side.
#[derive(Debug, Clone)]
struct BlockW {
    ln1_g: Matrix,
    ln1_b: Matrix,
    wq: LinW,
    wk: LinW,
    wv: LinW,
    wo: LinW,
    rel: Option<RelW>,
    ln2_g: Matrix,
    ln2_b: Matrix,
    ffn1: LinW,
    ffn2: LinW,
    q_wq: QuantizedMatrix,
    q_wk: QuantizedMatrix,
    q_wv: QuantizedMatrix,
    q_wo: QuantizedMatrix,
    q_ffn1: QuantizedMatrix,
    q_ffn2: QuantizedMatrix,
}

/// Reusable per-thread buffers for the int8 path: steady-state scoring
/// allocates nothing.
#[derive(Debug, Default)]
pub struct PlmScratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    xq: Vec<i8>,
    xs: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    qq: Vec<i8>,
    qs: Vec<f32>,
    kq: Vec<i8>,
    ks: Vec<f32>,
    vt: Vec<f32>,
    vtq: Vec<i8>,
    vts: Vec<f32>,
    scores: Vec<f32>,
    attn_q: Vec<i8>,
    attn_s: Vec<f32>,
    ctx: Vec<f32>,
    stage: Vec<f32>,
    hbuf: Vec<f32>,
    hq: Vec<i8>,
    hs: Vec<f32>,
    c2p: Vec<f32>,
    p2c: Vec<f32>,
    p2c_lo: Vec<f32>,
    p2c_hi: Vec<f32>,
    kt_pairs: Vec<i8>,
    av_pairs: Vec<i8>,
    qpair: Vec<i32>,
    acc32: Vec<i32>,
    row_tmp: Vec<f32>,
    traw: Vec<f32>,
    trawq: Vec<i8>,
    traws: Vec<f32>,
    tproj: Vec<f32>,
}

fn grow<T: Clone + Default>(v: &mut Vec<T>, n: usize) {
    if v.len() < n {
        v.resize(n, T::default());
    }
}

/// Frozen PLM inference artifact: task encoder, f32 weights and
/// per-channel int8 views, servable without any training machinery.
#[derive(Debug, Clone)]
pub struct PlmInferenceModel {
    kind: PlmKind,
    dim: usize,
    heads: usize,
    radius: usize,
    window_tokens: usize,
    temporal_fusion: bool,
    encoder: TaskEncoder,
    tok: Matrix,
    pos: Option<Matrix>,
    blocks: Vec<BlockW>,
    ln_f_g: Matrix,
    ln_f_b: Matrix,
    time: LinW,
    time_q: QuantizedMatrix,
    head: LinW,
    head_q: QuantizedMatrix,
    n_scalars: usize,
}

impl PlmInferenceModel {
    /// Export frozen inference weights from a trained PLM.
    pub fn export(fitted: &FittedPlm) -> PlmInferenceModel {
        let cfg = &fitted.cfg;
        let im = InferenceModel::export(&fitted.store);
        let tok = im.weight("plm.enc.tok.table").clone();
        let pos = match cfg.kind {
            PlmKind::Roberta => Some(im.weight("plm.enc.pos.table").clone()),
            PlmKind::Deberta => None,
        };
        let blocks = (0..cfg.layers)
            .map(|i| {
                let b = format!("plm.enc.block{i}");
                let wq = LinW::from(&im, &format!("{b}.attn.wq"));
                let wk = LinW::from(&im, &format!("{b}.attn.wk"));
                let rel = match cfg.kind {
                    PlmKind::Roberta => None,
                    PlmKind::Deberta => {
                        let table = im.weight(&format!("{b}.attn.rel.table"));
                        // The tape gathers the full table (ids 0..2r) and
                        // runs it through the shared projections every
                        // forward; both depend only on weights, so hoist.
                        let qr = infer::linear(table, &wq.w, &wq.b);
                        let kr = infer::linear(table, &wk.w, &wk.b);
                        let qr_q = QuantizedMatrix::from_rows(&qr);
                        let kr_q = QuantizedMatrix::from_rows(&kr);
                        let qr_pairs = pack_head_pairs(&qr_q, cfg.heads, cfg.dim / cfg.heads);
                        let kr_pairs = pack_head_pairs(&kr_q, cfg.heads, cfg.dim / cfg.heads);
                        Some(RelW {
                            qr,
                            kr,
                            qr_q,
                            kr_q,
                            qr_pairs,
                            kr_pairs,
                        })
                    }
                };
                let wv = LinW::from(&im, &format!("{b}.attn.wv"));
                let wo = LinW::from(&im, &format!("{b}.attn.wo"));
                let ffn1 = LinW::from(&im, &format!("{b}.ffn1"));
                let ffn2 = LinW::from(&im, &format!("{b}.ffn2"));
                BlockW {
                    ln1_g: im.weight(&format!("{b}.ln1.gain")).clone(),
                    ln1_b: im.weight(&format!("{b}.ln1.bias")).clone(),
                    q_wq: QuantizedMatrix::from_weight(&wq.w),
                    q_wk: QuantizedMatrix::from_weight(&wk.w),
                    q_wv: QuantizedMatrix::from_weight(&wv.w),
                    q_wo: QuantizedMatrix::from_weight(&wo.w),
                    q_ffn1: QuantizedMatrix::from_weight(&ffn1.w),
                    q_ffn2: QuantizedMatrix::from_weight(&ffn2.w),
                    wq,
                    wk,
                    wv,
                    wo,
                    rel,
                    ln2_g: im.weight(&format!("{b}.ln2.gain")).clone(),
                    ln2_b: im.weight(&format!("{b}.ln2.bias")).clone(),
                    ffn1,
                    ffn2,
                }
            })
            .collect();
        let time = LinW::from(&im, "plm.time_proj");
        let head = LinW::from(&im, "plm.head");
        PlmInferenceModel {
            kind: cfg.kind,
            dim: cfg.dim,
            heads: cfg.heads,
            radius: cfg.radius,
            window_tokens: cfg.window_tokens,
            temporal_fusion: cfg.temporal_fusion,
            encoder: fitted.encoder.clone(),
            tok,
            pos,
            blocks,
            ln_f_g: im.weight("plm.enc.ln_f.gain").clone(),
            ln_f_b: im.weight("plm.enc.ln_f.bias").clone(),
            time_q: QuantizedMatrix::from_weight(&time.w),
            time,
            head_q: QuantizedMatrix::from_weight(&head.w),
            head,
            n_scalars: im.n_scalars(),
        }
    }

    /// Variant this model was exported from.
    pub fn kind(&self) -> PlmKind {
        self.kind
    }

    /// Task encoder (tokenizer + vocabulary) fitted at training time.
    pub fn encoder(&self) -> &TaskEncoder {
        &self.encoder
    }

    /// Total scalar parameter count of the frozen snapshot.
    pub fn n_scalars(&self) -> usize {
        self.n_scalars
    }

    /// Build an [`EncodedWindow`] from a streaming window of raw texts
    /// and their (chronological) timestamps — the serving-path
    /// equivalent of [`TaskEncoder::encode`].
    pub fn encode_stream(&self, texts: &[&str], timestamps: &[Timestamp]) -> EncodedWindow {
        debug_assert_eq!(texts.len(), timestamps.len());
        EncodedWindow {
            post_tokens: texts.iter().map(|t| self.encoder.encode_text(t)).collect(),
            time_feats: (0..texts.len())
                .map(|k| time_vector(timestamps, k))
                .collect(),
            label: 0,
        }
    }

    /// Logits for one window: the f32 reference or the int8 fast path.
    pub fn logits(
        &self,
        example: &EncodedWindow,
        quantized: bool,
        scratch: &mut PlmScratch,
    ) -> [f32; RiskLevel::COUNT] {
        if quantized {
            self.logits_i8(example, scratch)
        } else {
            self.logits_f32(example)
        }
    }

    /// Predicted class for one window.
    pub fn score(
        &self,
        example: &EncodedWindow,
        quantized: bool,
        scratch: &mut PlmScratch,
    ) -> usize {
        argmax_logits(&self.logits(example, quantized, scratch))
    }

    /// Score a batch of windows on the rsd-par pool (grain 16, one
    /// scratch per chunk — the GBDT scorer's pattern). Per-window
    /// results are pure functions of the window, so thread counts and
    /// partitionings cannot change them.
    pub fn score_windows(&self, examples: &[EncodedWindow], quantized: bool) -> Vec<usize> {
        let mut preds = vec![0usize; examples.len()];
        rsd_par::parallel_chunks_mut(&mut preds, 16, |start, chunk| {
            let mut scratch = PlmScratch::default();
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = self.score(&examples[start + off], quantized, &mut scratch);
            }
        });
        preds
    }

    // ---- f32 reference path ----------------------------------------------
    //
    // A line-for-line transcription of `PlmModel::forward` +
    // `Encoder::forward` off the tape: every op maps to the same Matrix
    // kernel (or the same scalar loop) the tape op runs, in the same
    // order, so the result is bit-identical to `Tape::inference`.

    fn time_summary_f32(&self, example: &EncodedWindow) -> Matrix {
        let w = example.time_feats.len();
        let data: Vec<f32> = example
            .time_feats
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        let raw = Matrix::from_vec(w, TIME_FEATURE_DIM, data);
        let projected = infer::linear(&raw, &self.time.w, &self.time.b);
        infer::mean_rows(&projected)
    }

    /// Tape-free f32 logits, bit-identical to the tape forward.
    pub fn logits_f32(&self, example: &EncodedWindow) -> [f32; RiskLevel::COUNT] {
        let ids = example.window_tokens(self.window_tokens);
        let seq = ids.len();
        let mut x = Matrix::zeros(seq, self.dim);
        for (r, &id) in ids.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.tok.row(id as usize));
        }
        if let Some(pos) = &self.pos {
            let mut p = Matrix::zeros(seq, self.dim);
            for r in 0..seq {
                p.row_mut(r).copy_from_slice(pos.row(r));
            }
            x.axpy(1.0, &p);
        }
        if self.temporal_fusion {
            let summary = self.time_summary_f32(example);
            let ones = Matrix::full(seq, 1, 1.0);
            let extra = ones.matmul(&summary);
            x.axpy(1.0, &extra);
        }
        let mut h = x;
        for blk in &self.blocks {
            h = self.block_f32(blk, h);
        }
        let hn = infer::layer_norm(&h, &self.ln_f_g, &self.ln_f_b);
        let pooled = infer::mean_rows(&hn);
        let logits = infer::linear(&pooled, &self.head.w, &self.head.b);
        let mut out = [0.0f32; RiskLevel::COUNT];
        out.copy_from_slice(logits.row(0));
        out
    }

    fn block_f32(&self, blk: &BlockW, x: Matrix) -> Matrix {
        let normed = infer::layer_norm(&x, &blk.ln1_g, &blk.ln1_b);
        let attn_out = match &blk.rel {
            None => self.mha_f32(blk, &normed),
            Some(rel) => self.disentangled_f32(blk, rel, &normed),
        };
        let mut x = x;
        x.axpy(1.0, &attn_out);
        let normed = infer::layer_norm(&x, &blk.ln2_g, &blk.ln2_b);
        let h = infer::linear(&normed, &blk.ffn1.w, &blk.ffn1.b);
        let h = infer::gelu(&h);
        let h = infer::linear(&h, &blk.ffn2.w, &blk.ffn2.b);
        x.axpy(1.0, &h);
        x
    }

    fn mha_f32(&self, blk: &BlockW, x: &Matrix) -> Matrix {
        let hd = self.dim / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let q = infer::linear(x, &blk.wq.w, &blk.wq.b);
        let k = infer::linear(x, &blk.wk.w, &blk.wk.b);
        let v = infer::linear(x, &blk.wv.w, &blk.wv.b);
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * hd;
            let qh = narrow_cols(&q, start, hd);
            let kh = narrow_cols(&k, start, hd);
            let vh = narrow_cols(&v, start, hd);
            let kt = kh.transpose();
            let mut scores = qh.matmul(&kt).map(|s| s * scale);
            infer::softmax_rows_in_place(&mut scores);
            heads.push(scores.matmul(&vh));
        }
        let ctx = concat_cols(&heads);
        infer::linear(&ctx, &blk.wo.w, &blk.wo.b)
    }

    fn disentangled_f32(&self, blk: &BlockW, rel: &RelW, x: &Matrix) -> Matrix {
        let hd = self.dim / self.heads;
        // DeBERTa scales by √(3d) since three score terms are summed.
        let scale = 1.0 / (3.0 * hd as f32).sqrt();
        let seq = x.rows;
        let q = infer::linear(x, &blk.wq.w, &blk.wq.b);
        let k = infer::linear(x, &blk.wk.w, &blk.wk.b);
        let v = infer::linear(x, &blk.wv.w, &blk.wv.b);
        let mut heads = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * hd;
            let qh = narrow_cols(&q, start, hd);
            let kh = narrow_cols(&k, start, hd);
            let vh = narrow_cols(&v, start, hd);
            let qrh = narrow_cols(&rel.qr, start, hd);
            let krh = narrow_cols(&rel.kr, start, hd);

            let kt = kh.transpose();
            let mut scores = qh.matmul(&kt);
            let krt = krh.transpose();
            let c2p_full = qh.matmul(&krt);
            let c2p = infer::relative_gather(&c2p_full, seq, self.radius, false);
            let qrt = qrh.transpose();
            let p2c_full = kh.matmul(&qrt);
            let p2c = infer::relative_gather(&p2c_full, seq, self.radius, true);

            scores.axpy(1.0, &c2p);
            scores.axpy(1.0, &p2c);
            let mut scaled = scores.map(|s| s * scale);
            infer::softmax_rows_in_place(&mut scaled);
            heads.push(scaled.matmul(&vh));
        }
        let ctx = concat_cols(&heads);
        infer::linear(&ctx, &blk.wo.w, &blk.wo.b)
    }

    // ---- int8 fast path --------------------------------------------------

    /// Int8 logits: per-row dynamic activation quantization, every GEMM
    /// on the i8×i8→i32 kernels, fast polynomial softmax/GELU. Bitwise
    /// deterministic across thread counts and batch partitionings.
    pub fn logits_i8(
        &self,
        example: &EncodedWindow,
        s: &mut PlmScratch,
    ) -> [f32; RiskLevel::COUNT] {
        let ids = example.window_tokens(self.window_tokens);
        let (seq, dim, ffn) = (ids.len(), self.dim, self.blocks[0].q_ffn1.rows());
        grow(&mut s.x, seq * dim);
        grow(&mut s.normed, seq * dim);
        grow(&mut s.xq, seq * dim.max(ffn));
        grow(&mut s.xs, seq);
        grow(&mut s.q, seq * dim);
        grow(&mut s.k, seq * dim);
        grow(&mut s.v, seq * dim);
        grow(&mut s.qq, seq * dim);
        grow(&mut s.qs, seq);
        grow(&mut s.kq, seq * dim);
        grow(&mut s.ks, seq);
        grow(&mut s.vt, dim * seq);
        grow(&mut s.vtq, dim * seq);
        grow(&mut s.vts, dim);
        grow(&mut s.scores, seq * seq);
        grow(&mut s.attn_q, seq * seq);
        grow(&mut s.attn_s, seq);
        grow(&mut s.ctx, seq * dim);
        grow(&mut s.stage, seq * dim.max(ffn));
        grow(&mut s.hbuf, seq * ffn);
        grow(&mut s.hq, seq * ffn);
        grow(&mut s.hs, seq);
        grow(&mut s.row_tmp, dim.max(TIME_FEATURE_DIM));
        let w_rel = 2 * self.radius + 1;
        grow(&mut s.c2p, seq * w_rel);
        grow(&mut s.p2c, seq * w_rel);
        grow(&mut s.p2c_lo, seq);
        grow(&mut s.p2c_hi, seq);
        let hd = dim / self.heads;
        let pairs = hd.div_ceil(2);
        let spairs = seq.div_ceil(2);
        grow(&mut s.kt_pairs, self.heads * pairs * 2 * seq);
        grow(&mut s.av_pairs, spairs * 2 * hd);
        grow(&mut s.qpair, pairs.max(2 * spairs));
        grow(&mut s.acc32, seq.max(w_rel).max(2 * hd));

        // Embeddings stay f32: a table lookup is a row copy, not a GEMM,
        // so quantizing it would add error without shaving a single
        // multiply. The int8 tables exist for memory-footprint callers
        // ([`InferenceModel::quantized_rows`]), not this path.
        for (r, &id) in ids.iter().enumerate() {
            s.x[r * dim..(r + 1) * dim].copy_from_slice(self.tok.row(id as usize));
        }
        if let Some(pos) = &self.pos {
            for r in 0..seq {
                for (o, &p) in s.x[r * dim..(r + 1) * dim].iter_mut().zip(pos.row(r)) {
                    *o += p;
                }
            }
        }
        if self.temporal_fusion {
            self.time_summary_i8(example, s);
            for r in 0..seq {
                for (o, &p) in s.x[r * dim..(r + 1) * dim]
                    .iter_mut()
                    .zip(&s.row_tmp[..dim])
                {
                    *o += p;
                }
            }
        }

        for bi in 0..self.blocks.len() {
            self.block_i8(bi, seq, s);
        }

        // Final layer norm, mean pooling, classification head.
        layer_norm_slices(
            &s.x[..seq * dim],
            seq,
            dim,
            &self.ln_f_g.data,
            &self.ln_f_b.data,
            &mut s.normed[..seq * dim],
        );
        mean_rows_slices(&s.normed[..seq * dim], seq, dim, &mut s.row_tmp[..dim]);
        s.xs[0] = quantize_row_i8(&s.row_tmp[..dim], &mut s.xq[..dim]);
        let mut logits = [0.0f32; RiskLevel::COUNT];
        qgemm_nt(
            &s.xq[..dim],
            &s.xs[..1],
            1,
            dim,
            &self.head_q,
            Some(&self.head.b.data),
            &mut logits,
        );
        logits
    }

    /// Temporal summary on the int8 kernels; result left in
    /// `s.row_tmp[..dim]`.
    fn time_summary_i8(&self, example: &EncodedWindow, s: &mut PlmScratch) {
        let (w, dim) = (example.time_feats.len(), self.dim);
        grow(&mut s.traw, w * TIME_FEATURE_DIM);
        grow(&mut s.trawq, w * TIME_FEATURE_DIM);
        grow(&mut s.traws, w);
        grow(&mut s.tproj, w * dim);
        for (r, feats) in example.time_feats.iter().enumerate() {
            s.traw[r * TIME_FEATURE_DIM..(r + 1) * TIME_FEATURE_DIM].copy_from_slice(feats);
            s.traws[r] = quantize_row_i8(
                &s.traw[r * TIME_FEATURE_DIM..(r + 1) * TIME_FEATURE_DIM],
                &mut s.trawq[r * TIME_FEATURE_DIM..(r + 1) * TIME_FEATURE_DIM],
            );
        }
        qgemm_nt(
            &s.trawq[..w * TIME_FEATURE_DIM],
            &s.traws[..w],
            w,
            TIME_FEATURE_DIM,
            &self.time_q,
            Some(&self.time.b.data),
            &mut s.tproj[..w * dim],
        );
        mean_rows_slices(&s.tproj[..w * dim], w, dim, &mut s.row_tmp[..dim]);
    }

    fn block_i8(&self, bi: usize, seq: usize, s: &mut PlmScratch) {
        let blk = &self.blocks[bi];
        let (dim, heads) = (self.dim, self.heads);
        let hd = dim / heads;
        let ffn = blk.q_ffn1.rows();

        // ln1 + fused q/k/v projections from one activation quantization.
        layer_norm_slices(
            &s.x[..seq * dim],
            seq,
            dim,
            &blk.ln1_g.data,
            &blk.ln1_b.data,
            &mut s.normed[..seq * dim],
        );
        for r in 0..seq {
            s.xs[r] = quantize_row_i8(
                &s.normed[r * dim..(r + 1) * dim],
                &mut s.xq[r * dim..(r + 1) * dim],
            );
        }
        qgemm_nt(
            &s.xq[..seq * dim],
            &s.xs[..seq],
            seq,
            dim,
            &blk.q_wq,
            Some(&blk.wq.b.data),
            &mut s.q[..seq * dim],
        );
        qgemm_nt(
            &s.xq[..seq * dim],
            &s.xs[..seq],
            seq,
            dim,
            &blk.q_wk,
            Some(&blk.wk.b.data),
            &mut s.k[..seq * dim],
        );
        qgemm_nt(
            &s.xq[..seq * dim],
            &s.xs[..seq],
            seq,
            dim,
            &blk.q_wv,
            Some(&blk.wv.b.data),
            &mut s.v[..seq * dim],
        );

        // Re-quantize q/k rows for the score microkernels and lay V out
        // channel-major (quantized per channel) for attention × value.
        for r in 0..seq {
            s.qs[r] = quantize_row_i8(
                &s.q[r * dim..(r + 1) * dim],
                &mut s.qq[r * dim..(r + 1) * dim],
            );
            s.ks[r] = quantize_row_i8(
                &s.k[r * dim..(r + 1) * dim],
                &mut s.kq[r * dim..(r + 1) * dim],
            );
        }
        for d in 0..dim {
            for j in 0..seq {
                s.vt[d * seq + j] = s.v[j * dim + d];
            }
            s.vts[d] = quantize_row_i8(
                &s.vt[d * seq..(d + 1) * seq],
                &mut s.vtq[d * seq..(d + 1) * seq],
            );
        }

        let scale = match self.kind {
            PlmKind::Roberta => 1.0 / (hd as f32).sqrt(),
            PlmKind::Deberta => 1.0 / (3.0 * hd as f32).sqrt(),
        };
        let (radius, w_rel) = (self.radius, 2 * self.radius + 1);
        // Head dims are far below the 32-lane dot kernel's main loop, so
        // per-(i,j) dots would run scalar. Instead pack the short head
        // axis into i16 pairs and sweep the *long* axis (seq or 2r+1)
        // with `gemv_i8_pairs`: identical integer sums, vectorized over
        // outputs rather than the contraction.
        let pairs = hd.div_ceil(2);
        for h in 0..heads {
            for p in 0..pairs {
                let d0 = h * hd + 2 * p;
                let row = &mut s.kt_pairs[(h * pairs + p) * 2 * seq..(h * pairs + p + 1) * 2 * seq];
                for j in 0..seq {
                    row[2 * j] = s.kq[j * dim + d0];
                    row[2 * j + 1] = if 2 * p + 1 < hd {
                        s.kq[j * dim + d0 + 1]
                    } else {
                        0
                    };
                }
            }
        }
        for h in 0..heads {
            let start = h * hd;
            let rel_block = pairs * 2 * w_rel;
            if let Some(rel) = &blk.rel {
                // c2p/p2c "full" components against the export-time
                // pair-interleaved relative projections. The attention
                // scale folds into the dequant factors here and in the
                // base loop below, so no separate scaling pass runs
                // over the seq × seq score matrix.
                for i in 0..seq {
                    fill_pairs(
                        &s.qq[i * dim + start..i * dim + start + hd],
                        &mut s.qpair[..pairs],
                    );
                    gemv_i8_pairs(
                        &s.qpair[..pairs],
                        &rel.kr_pairs[h * rel_block..(h + 1) * rel_block],
                        w_rel,
                        &mut s.acc32,
                    );
                    let f = s.qs[i] * scale;
                    for c in 0..w_rel {
                        s.c2p[i * w_rel + c] = f * rel.kr_q.scale(c) * s.acc32[c] as f32;
                    }
                }
                for j in 0..seq {
                    fill_pairs(
                        &s.kq[j * dim + start..j * dim + start + hd],
                        &mut s.qpair[..pairs],
                    );
                    gemv_i8_pairs(
                        &s.qpair[..pairs],
                        &rel.qr_pairs[h * rel_block..(h + 1) * rel_block],
                        w_rel,
                        &mut s.acc32,
                    );
                    let f = s.ks[j] * scale;
                    for c in 0..w_rel {
                        s.p2c[j * w_rel + c] = f * rel.qr_q.scale(c) * s.acc32[c] as f32;
                    }
                }
                // Outside the relative window the clamped p2c index is
                // constant; gather both edge columns once so the score
                // loop runs clamp- and branch-free.
                for j in 0..seq {
                    s.p2c_lo[j] = s.p2c[j * w_rel];
                    s.p2c_hi[j] = s.p2c[j * w_rel + 2 * radius];
                }
            }
            for i in 0..seq {
                fill_pairs(
                    &s.qq[i * dim + start..i * dim + start + hd],
                    &mut s.qpair[..pairs],
                );
                gemv_i8_pairs(
                    &s.qpair[..pairs],
                    &s.kt_pairs[h * pairs * 2 * seq..(h + 1) * pairs * 2 * seq],
                    seq,
                    &mut s.acc32,
                );
                let sq = s.qs[i] * scale;
                let row = &mut s.scores[i * seq..(i + 1) * seq];
                for j in 0..seq {
                    row[j] = sq * s.ks[j] * s.acc32[j] as f32;
                }
                if blk.rel.is_some() {
                    // clamp(j − i + r, 0, 2r) splits into three
                    // clamp-free runs around the window [i−r, i+r].
                    let lo = i.saturating_sub(radius);
                    let hi = (i + radius).min(seq - 1);
                    let c2p_row = &s.c2p[i * w_rel..(i + 1) * w_rel];
                    let (c0, c2r) = (c2p_row[0], c2p_row[2 * radius]);
                    for j in 0..lo {
                        row[j] += c0 + s.p2c_hi[j];
                    }
                    for j in lo..=hi {
                        row[j] += c2p_row[j + radius - i] + s.p2c[j * w_rel + (i + radius - j)];
                    }
                    for j in hi + 1..seq {
                        row[j] += c2r + s.p2c_lo[j];
                    }
                }
                s.attn_s[i] = softmax_q7(
                    &s.scores[i * seq..(i + 1) * seq],
                    &mut s.attn_q[i * seq..(i + 1) * seq],
                );
            }
            // attention × value as a pair-packed GEMM over `seq`:
            // interleave the head's V channels by seq-pair once, then
            // sweep two attention rows at a time so every panel load is
            // amortized. Integer sums are exactly the per-(i, d) dots.
            let spairs = seq.div_ceil(2);
            for p in 0..spairs {
                let row = &mut s.av_pairs[p * 2 * hd..(p + 1) * 2 * hd];
                for d in 0..hd {
                    let col = &s.vtq[(start + d) * seq..(start + d + 1) * seq];
                    row[2 * d] = col[2 * p];
                    row[2 * d + 1] = if 2 * p + 1 < seq { col[2 * p + 1] } else { 0 };
                }
            }
            let mut i = 0;
            while i + 2 <= seq {
                let (p0, p1) = s.qpair.split_at_mut(spairs);
                fill_pairs(&s.attn_q[i * seq..(i + 1) * seq], &mut p0[..spairs]);
                fill_pairs(&s.attn_q[(i + 1) * seq..(i + 2) * seq], &mut p1[..spairs]);
                let (a0, a1) = s.acc32.split_at_mut(hd);
                gemv2_i8_pairs(
                    &p0[..spairs],
                    &p1[..spairs],
                    &s.av_pairs,
                    hd,
                    a0,
                    &mut a1[..hd],
                );
                for d in 0..hd {
                    let sv = s.vts[start + d];
                    s.ctx[i * dim + start + d] = s.attn_s[i] * sv * a0[d] as f32;
                    s.ctx[(i + 1) * dim + start + d] = s.attn_s[i + 1] * sv * a1[d] as f32;
                }
                i += 2;
            }
            if i < seq {
                fill_pairs(&s.attn_q[i * seq..(i + 1) * seq], &mut s.qpair[..spairs]);
                gemv_i8_pairs(&s.qpair[..spairs], &s.av_pairs, hd, &mut s.acc32);
                for d in 0..hd {
                    s.ctx[i * dim + start + d] = s.attn_s[i] * s.vts[start + d] * s.acc32[d] as f32;
                }
            }
        }

        // Output projection + residual.
        for r in 0..seq {
            s.xs[r] = quantize_row_i8(
                &s.ctx[r * dim..(r + 1) * dim],
                &mut s.xq[r * dim..(r + 1) * dim],
            );
        }
        qgemm_nt(
            &s.xq[..seq * dim],
            &s.xs[..seq],
            seq,
            dim,
            &blk.q_wo,
            Some(&blk.wo.b.data),
            &mut s.stage[..seq * dim],
        );
        for (o, &a) in s.x[..seq * dim].iter_mut().zip(&s.stage[..seq * dim]) {
            *o += a;
        }

        // ln2 + FFN with fast GELU.
        layer_norm_slices(
            &s.x[..seq * dim],
            seq,
            dim,
            &blk.ln2_g.data,
            &blk.ln2_b.data,
            &mut s.normed[..seq * dim],
        );
        for r in 0..seq {
            s.xs[r] = quantize_row_i8(
                &s.normed[r * dim..(r + 1) * dim],
                &mut s.xq[r * dim..(r + 1) * dim],
            );
        }
        qgemm_nt(
            &s.xq[..seq * dim],
            &s.xs[..seq],
            seq,
            dim,
            &blk.q_ffn1,
            Some(&blk.ffn1.b.data),
            &mut s.hbuf[..seq * ffn],
        );
        infer::gelu_fast_slice(&mut s.hbuf[..seq * ffn]);
        for r in 0..seq {
            s.hs[r] = quantize_row_i8(
                &s.hbuf[r * ffn..(r + 1) * ffn],
                &mut s.hq[r * ffn..(r + 1) * ffn],
            );
        }
        qgemm_nt(
            &s.hq[..seq * ffn],
            &s.hs[..seq],
            seq,
            ffn,
            &blk.q_ffn2,
            Some(&blk.ffn2.b.data),
            &mut s.stage[..seq * dim],
        );
        for (o, &a) in s.x[..seq * dim].iter_mut().zip(&s.stage[..seq * dim]) {
            *o += a;
        }
    }
}

/// Argmax with the exact tie-breaking of
/// [`rsd_nn::loss::argmax_rows`] (last maximal element wins), so the
/// engines and the tape agree on equal logits too.
pub fn argmax_logits(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

/// Copy columns `[start, start+len)` (tape `narrow_cols`).
fn narrow_cols(m: &Matrix, start: usize, len: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows, len);
    for r in 0..m.rows {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[start..start + len]);
    }
    out
}

/// Concatenate matrices along columns (tape `concat_cols`).
fn concat_cols(parts: &[Matrix]) -> Matrix {
    let rows = parts[0].rows;
    let cols: usize = parts.iter().map(|p| p.cols).sum();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let mut at = 0;
        for p in parts {
            out.row_mut(r)[at..at + p.cols].copy_from_slice(p.row(r));
            at += p.cols;
        }
    }
    out
}

/// Slice-based layer norm, same arithmetic as `infer::layer_norm`.
fn layer_norm_slices(
    x: &[f32],
    rows: usize,
    cols: usize,
    gain: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    const EPS: f32 = 1e-5;
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let mean: f32 = row.iter().sum::<f32>() / cols as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        for (c, &xv) in row.iter().enumerate() {
            out[r * cols + c] = (xv - mean) * istd * gain[c] + bias[c];
        }
    }
}

/// Slice-based mean over rows, same accumulation order as
/// `infer::mean_rows`.
fn mean_rows_slices(x: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    out.fill(0.0);
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(&x[r * cols..(r + 1) * cols]) {
            *o += v;
        }
    }
    let n = rows.max(1) as f32;
    for o in out {
        *o /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plm::{PlmConfig, PlmKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_cfg(kind: PlmKind) -> PlmConfig {
        PlmConfig {
            max_vocab: 300,
            max_tokens: 12,
            window_tokens: 24,
            dim: 16,
            layers: 2,
            heads: 2,
            ffn_dim: 32,
            dropout: 0.1, // identity at inference; must not perturb parity
            radius: 4,
            ..PlmConfig::base(kind)
        }
    }

    fn synthetic_window(vocab: usize, posts: usize, tokens: usize, seed: u64) -> EncodedWindow {
        let mut rng = StdRng::seed_from_u64(seed);
        EncodedWindow {
            post_tokens: (0..posts)
                .map(|_| {
                    (0..tokens)
                        .map(|_| rng.gen_range(0..vocab as u32))
                        .collect()
                })
                .collect(),
            time_feats: (0..posts)
                .map(|_| std::array::from_fn(|_| rng.gen_range(-1.0f32..1.5)))
                .collect(),
            label: 0,
        }
    }

    #[test]
    fn f32_engine_is_bitwise_identical_to_tape() {
        for kind in [PlmKind::Roberta, PlmKind::Deberta] {
            let fitted = FittedPlm::synthetic(tiny_cfg(kind), 42);
            let model = PlmInferenceModel::export(&fitted);
            let vocab = fitted.encoder.vocab.len();
            for (posts, tokens, seed) in [(1, 1, 1), (2, 5, 2), (5, 12, 3), (5, 12, 4)] {
                let w = synthetic_window(vocab, posts, tokens, seed);
                let tape_logits = fitted.logits_tape(&w);
                let fast = model.logits_f32(&w);
                assert_eq!(
                    tape_logits.len(),
                    fast.len(),
                    "{kind:?} logit width mismatch"
                );
                for (i, (&a, &b)) in tape_logits.iter().zip(&fast).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{kind:?} posts={posts} logit {i}: tape {a} vs f32 engine {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn int8_logits_track_f32_within_epsilon() {
        for kind in [PlmKind::Roberta, PlmKind::Deberta] {
            let fitted = FittedPlm::synthetic(tiny_cfg(kind), 43);
            let model = PlmInferenceModel::export(&fitted);
            let vocab = fitted.encoder.vocab.len();
            let mut scratch = PlmScratch::default();
            let mut agree = 0usize;
            let n = 40;
            let mut max_err = 0.0f32;
            for seed in 0..n {
                let w = synthetic_window(vocab, 1 + (seed as usize % 5), 10, 100 + seed);
                let f = model.logits_f32(&w);
                let q = model.logits_i8(&w, &mut scratch);
                for (a, b) in f.iter().zip(&q) {
                    max_err = max_err.max((a - b).abs());
                }
                if argmax_logits(&f) == argmax_logits(&q) {
                    agree += 1;
                }
            }
            assert!(max_err < 0.1, "{kind:?}: max logit err {max_err}");
            assert!(
                agree * 100 >= n as usize * 95,
                "{kind:?}: agreement {agree}/{n}"
            );
        }
    }

    #[test]
    fn int8_scoring_is_bitwise_deterministic_across_threads_and_batches() {
        let fitted = FittedPlm::synthetic(tiny_cfg(PlmKind::Deberta), 44);
        let model = PlmInferenceModel::export(&fitted);
        let vocab = fitted.encoder.vocab.len();
        let windows: Vec<EncodedWindow> = (0..37)
            .map(|i| synthetic_window(vocab, 1 + i % 5, 11, 500 + i as u64))
            .collect();

        let serial = rsd_par::run_serial(|| model.score_windows(&windows, true));
        for threads in [1, 2, 4] {
            let pooled = rsd_par::with_local_pool(threads, || model.score_windows(&windows, true));
            assert_eq!(serial, pooled, "threads={threads}");
        }
        // Batch partitioning: one window at a time must match the batch.
        let mut scratch = PlmScratch::default();
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(serial[i], model.score(w, true, &mut scratch), "window {i}");
        }
        // And raw logits are bitwise stable call-to-call.
        let a = model.logits_i8(&windows[0], &mut scratch);
        let b = model.logits_i8(&windows[0], &mut scratch);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn stream_encoding_matches_batch_encoding_shape() {
        let fitted = FittedPlm::synthetic(tiny_cfg(PlmKind::Roberta), 45);
        let model = PlmInferenceModel::export(&fitted);
        let stamps: Vec<Timestamp> = (0..3)
            .map(|i| Timestamp::from_ymd_hms(2020, 6, 1 + i, 12, 0, 0).unwrap())
            .collect();
        let w = model.encode_stream(&["w1 w2 w3", "w4 w5", "w6"], &stamps);
        assert_eq!(w.post_tokens.len(), 3);
        assert_eq!(w.time_feats.len(), 3);
        // CLS prefix on every post.
        for toks in &w.post_tokens {
            assert_eq!(toks[0], rsd_text::SpecialToken::Cls.id());
        }
        let mut scratch = PlmScratch::default();
        let f = model.logits(&w, false, &mut scratch);
        let q = model.logits(&w, true, &mut scratch);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(q.iter().all(|v| v.is_finite()));
    }
}
