//! Shared supervised training loop for the neural baselines.
//!
//! Single-example tapes with minibatch gradient accumulation, Adam,
//! global-norm clipping, optional class-balanced oversampling (Table IV's
//! "data balance sampling"), and early stopping on validation macro-F1
//! with best-weights restore.

use rand::rngs::StdRng;
use rand::Rng;

use crate::encoding::EncodedWindow;
use rsd_common::rng::{shuffle, stream_rng, weighted_index};
use rsd_common::{Result, RsdError};
use rsd_corpus::RiskLevel;
use rsd_dataset::{DatasetSplits, Rsd15k};
use rsd_eval::{ClassificationReport, ConfusionMatrix};
use rsd_nn::loss::argmax_rows;
use rsd_nn::{Adam, Optimizer, ParamStore, Tape, Var};

/// Everything a baseline needs to train and report.
pub struct BenchData<'a> {
    /// The annotated dataset.
    pub dataset: &'a Rsd15k,
    /// User-disjoint splits with windowed instances.
    pub splits: &'a DatasetSplits,
    /// Cleaned unlabelled texts (the non-annotated pool) for pretraining.
    pub unlabeled: &'a [String],
    /// Seed for all model-side randomness.
    pub seed: u64,
}

/// Result of one baseline run.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Table III-style report (accuracy, macro-F1, per-class F1).
    pub report: ClassificationReport,
    /// The raw confusion matrix on the test split.
    pub confusion: ConfusionMatrix,
    /// Free-form extras (feature importance, rounds, pretrain loss, ...).
    pub extra: Vec<(String, String)>,
}

/// Supervised-loop hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Minibatch size (gradient accumulation count).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Early-stopping patience in epochs (0 disables).
    pub patience: usize,
    /// Oversample minority classes to balance training batches.
    pub balanced: bool,
    /// Expand training users into post-level windows (each post labelled,
    /// up to this many most-recent posts per user; 0 keeps only the
    /// user-level instance). The dataset is annotated at both post and
    /// user granularity, so this is extra *labelled* supervision, not
    /// leakage — validation/test stay strictly user-level.
    pub post_level_cap: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch: 16,
            lr: 1e-3,
            clip: 5.0,
            patience: 3,
            balanced: false,
            post_level_cap: 6,
        }
    }
}

/// Expand user-level training windows into post-level windows (see
/// [`TrainConfig::post_level_cap`]). With `cap == 0` the input is returned
/// unchanged.
pub fn augment_train_windows(
    dataset: &Rsd15k,
    train: &[rsd_dataset::UserWindow],
    window: usize,
    cap: usize,
) -> Vec<rsd_dataset::UserWindow> {
    if cap == 0 {
        return train.to_vec();
    }
    let mut out = Vec::new();
    for w in train {
        if let Some(user) = dataset.users.iter().find(|u| u.id == w.user) {
            out.extend(rsd_dataset::splits::post_level_windows(
                dataset, user, window, cap,
            ));
        } else {
            out.push(w.clone());
        }
    }
    out
}

/// A forward-pass builder: constructs the per-example graph and returns
/// 1×C logits. `Sync` because batches fan out across the `rsd-par` pool;
/// each invocation gets its own tape and its own derived RNG.
pub type ForwardFn<'m> =
    dyn Fn(&mut Tape, &ParamStore, &EncodedWindow, &mut StdRng) -> Var + Sync + 'm;

/// Train a classifier with early stopping; the store is left holding the
/// best-validation weights. Returns per-epoch validation macro-F1.
pub fn train_classifier(
    store: &mut ParamStore,
    forward: &ForwardFn<'_>,
    train: &[EncodedWindow],
    valid: &[EncodedWindow],
    cfg: &TrainConfig,
    seed: u64,
) -> Result<Vec<f64>> {
    if train.is_empty() {
        return Err(RsdError::data("train_classifier: empty training set"));
    }
    let mut rng = stream_rng(seed, "trainer.loop");
    let mut opt = Adam::new(cfg.lr);
    let mut history = Vec::new();
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_store: Option<ParamStore> = None;
    let mut since_best = 0usize;

    // Class weights for balanced oversampling.
    let class_weights: Vec<f64> = if cfg.balanced {
        let labels: Vec<usize> = train.iter().map(|e| e.label).collect();
        rsd_nn::loss::inverse_frequency_weights(&labels, RiskLevel::COUNT)
    } else {
        Vec::new()
    };

    let _train_span = rsd_obs::Span::enter("models.train");
    rsd_obs::stage_register("models.train");
    for epoch in 0..cfg.epochs {
        let _epoch_span = rsd_obs::Span::enter("models.train.epoch");
        // Epoch ordering.
        let order: Vec<usize> = if cfg.balanced {
            let weights: Vec<f64> = train.iter().map(|e| class_weights[e.label]).collect();
            (0..train.len())
                .map(|_| weighted_index(&mut rng, &weights))
                .collect()
        } else {
            let mut idx: Vec<usize> = (0..train.len()).collect();
            shuffle(&mut rng, &mut idx);
            idx
        };

        // Per-batch parallel forward/backward: each example runs on its
        // own tape with an RNG derived from (epoch seed, position), so
        // results don't depend on thread count. Gradients are then
        // harvested serially in batch order before the optimizer step.
        let mut loss_sum = 0.0f64;
        let telemetry = rsd_obs::enabled();
        let epoch_seed = rng.gen::<u64>();
        let mut done = 0usize;
        for batch in order.chunks(cfg.batch.max(1)) {
            // Per-batch spans only under RSD_OBS_PROFILE: thousands of
            // batches would otherwise dominate the telemetry stream.
            let _batch_span = (telemetry && rsd_obs::profile_enabled())
                .then(|| rsd_obs::Span::enter("models.train.batch"));
            let batch_t0 = std::time::Instant::now();
            let mut results: Vec<Option<(Tape, f32)>> = (0..batch.len()).map(|_| None).collect();
            let store_ref: &ParamStore = store;
            let base = done;
            rsd_par::parallel_chunks_mut(&mut results, 1, |start, slot| {
                let example = &train[batch[start]];
                let mut ex_rng = stream_rng(epoch_seed, &format!("trainer.ex.{}", base + start));
                let mut tape = Tape::new();
                let logits = forward(&mut tape, store_ref, example, &mut ex_rng);
                let loss = tape.cross_entropy(logits, &[example.label]);
                let loss_value = tape.value(loss).data[0];
                tape.backward(loss);
                slot[0] = Some((tape, loss_value));
            });
            done += batch.len();
            for r in results {
                let (tape, loss_value) = r.expect("forward ran");
                if telemetry {
                    loss_sum += f64::from(loss_value);
                }
                tape.harvest_grads(store);
            }
            store.scale_grads(1.0 / batch.len() as f32);
            store.clip_grad_norm(cfg.clip);
            opt.step(store);
            rsd_obs::latency_ns("models.train.batch", batch_t0.elapsed().as_nanos() as u64);
            rsd_obs::stage_progress("models.train", batch.len() as u64, 0);
        }

        // Validation macro-F1.
        let (f1, accuracy) = if valid.is_empty() {
            (0.0, 0.0)
        } else {
            let confusion = evaluate(store, forward, valid, &mut rng)?;
            (confusion.macro_f1(), confusion.accuracy())
        };
        history.push(f1);

        if telemetry {
            let tag = [("epoch", rsd_obs::Value::Int(epoch as i128))];
            rsd_obs::gauge_tagged("models.train.loss", loss_sum / order.len() as f64, &tag);
            rsd_obs::gauge_tagged("models.train.accuracy", accuracy, &tag);
        }

        if f1 > best_f1 + 1e-9 {
            best_f1 = f1;
            best_store = Some(store.clone());
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }
    rsd_obs::stage_finish("models.train");
    if let Some(best) = best_store {
        *store = best;
    }
    Ok(history)
}

/// Evaluate a forward function on a set, returning the confusion matrix.
pub fn evaluate(
    store: &ParamStore,
    forward: &ForwardFn<'_>,
    examples: &[EncodedWindow],
    rng: &mut StdRng,
) -> Result<ConfusionMatrix> {
    // Row-parallel inference with per-example derived RNGs (inference
    // forwards rarely draw from them, but dropout-style ops may); the
    // confusion matrix is filled serially in example order.
    let eval_seed = rng.gen::<u64>();
    let mut preds = vec![0usize; examples.len()];
    rsd_par::parallel_chunks_mut(&mut preds, 16, |start, chunk| {
        for (off, pred) in chunk.iter_mut().enumerate() {
            let j = start + off;
            let mut ex_rng = stream_rng(eval_seed, &format!("trainer.eval.{j}"));
            let mut tape = Tape::inference();
            let logits = forward(&mut tape, store, &examples[j], &mut ex_rng);
            *pred = argmax_rows(tape.value(logits))[0];
        }
    });
    let mut confusion = ConfusionMatrix::new(RiskLevel::COUNT);
    for (example, &pred) in examples.iter().zip(&preds) {
        confusion.record(example.label, pred)?;
    }
    Ok(confusion)
}

/// Assemble an [`EvalOutcome`] from a test confusion matrix.
pub fn outcome_from_confusion(
    name: &str,
    confusion: ConfusionMatrix,
    extra: Vec<(String, String)>,
) -> EvalOutcome {
    let class_names: Vec<&str> = RiskLevel::ALL.iter().map(|l| l.name()).collect();
    EvalOutcome {
        report: ClassificationReport::from_confusion(name, &class_names, &confusion),
        confusion,
        extra,
    }
}

/// Deterministic helper: sample up to `n` texts from the unlabeled pool.
pub fn sample_pretrain_texts(unlabeled: &[String], n: usize, seed: u64) -> Vec<String> {
    if unlabeled.len() <= n {
        return unlabeled.to_vec();
    }
    let mut rng = stream_rng(seed, "trainer.pretrain_pool");
    let mut idx: Vec<usize> = (0..unlabeled.len()).collect();
    shuffle(&mut rng, &mut idx);
    idx.truncate(n);
    idx.into_iter().map(|i| unlabeled[i].clone()).collect()
}

/// Convenience used by tests: a toy forward that ignores text and learns
/// only the bias (sanity baseline).
pub fn bias_only_forward(
    n_classes: usize,
) -> (
    ParamStore,
    impl Fn(&mut Tape, &ParamStore, &EncodedWindow, &mut StdRng) -> Var,
) {
    let mut store = ParamStore::new();
    let bias = store.register_zeros("bias", 1, n_classes);
    (
        store,
        move |tape: &mut Tape, store: &ParamStore, _ex: &EncodedWindow, rng: &mut StdRng| {
            let _ = rng.gen::<u32>();
            tape.param(store, bias)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::TIME_FEATURE_DIM;

    fn toy_examples(n: usize, skew: bool) -> Vec<EncodedWindow> {
        (0..n)
            .map(|i| {
                let label = if skew {
                    if i % 10 == 0 {
                        1
                    } else {
                        0
                    }
                } else {
                    i % 4
                };
                EncodedWindow {
                    post_tokens: vec![vec![2, 5 + label as u32]],
                    time_feats: vec![[0.0; TIME_FEATURE_DIM]],
                    label,
                }
            })
            .collect()
    }

    #[test]
    fn bias_only_learns_majority_class() {
        let (mut store, forward) = bias_only_forward(4);
        let train = toy_examples(100, true);
        let cfg = TrainConfig {
            epochs: 5,
            patience: 0,
            ..Default::default()
        };
        train_classifier(&mut store, &forward, &train, &train, &cfg, 1).unwrap();
        let mut rng = stream_rng(1, "test");
        let confusion = evaluate(&store, &forward, &train, &mut rng).unwrap();
        // Majority class 0 dominates; a bias-only model predicts it always.
        assert!(confusion.accuracy() > 0.85);
    }

    #[test]
    fn early_stopping_restores_best() {
        let (mut store, forward) = bias_only_forward(4);
        let train = toy_examples(40, false);
        let cfg = TrainConfig {
            epochs: 50,
            patience: 2,
            ..Default::default()
        };
        let history = train_classifier(&mut store, &forward, &train, &train, &cfg, 2).unwrap();
        assert!(history.len() < 50, "patience must stop early");
    }

    #[test]
    fn empty_training_rejected() {
        let (mut store, forward) = bias_only_forward(4);
        assert!(
            train_classifier(&mut store, &forward, &[], &[], &TrainConfig::default(), 3).is_err()
        );
    }

    #[test]
    fn balanced_sampling_counteracts_skew() {
        // With heavy skew, a balanced bias-only model should put
        // non-trivial probability on the minority class — its bias gets
        // as many minority as majority updates.
        let train = toy_examples(200, true);
        let cfg_bal = TrainConfig {
            epochs: 5,
            patience: 0,
            balanced: true,
            ..Default::default()
        };
        let (mut store_bal, forward_bal) = bias_only_forward(4);
        train_classifier(&mut store_bal, &forward_bal, &train, &train, &cfg_bal, 4).unwrap();
        let bias_bal = store_bal.value(rsd_nn::ParamId(0)).data.clone();
        // Balanced: class-1 logit should be close to class-0 logit.
        assert!(
            (bias_bal[0] - bias_bal[1]).abs() < 1.0,
            "balanced training should even out logits: {bias_bal:?}"
        );
    }

    #[test]
    fn augmentation_expands_and_caps() {
        use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(7007, 1_500, 24))
            .build()
            .unwrap();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        let plain = augment_train_windows(&d, &s.train, 5, 0);
        assert_eq!(plain.len(), s.train.len(), "cap 0 = unchanged");
        let expanded = augment_train_windows(&d, &s.train, 5, 4);
        assert!(expanded.len() > s.train.len());
        // Cap respected per user.
        use std::collections::HashMap;
        let mut per_user: HashMap<_, usize> = HashMap::new();
        for w in &expanded {
            *per_user.entry(w.user).or_insert(0) += 1;
        }
        assert!(per_user.values().all(|&c| c <= 4));
        // Every expanded window's label matches its own final post.
        for w in &expanded {
            assert_eq!(w.label, d.posts[*w.post_indices.last().unwrap()].label);
        }
    }

    #[test]
    fn telemetry_emits_loss_and_accuracy_per_epoch() {
        let cfg = TrainConfig {
            epochs: 3,
            patience: 0,
            ..Default::default()
        };
        let train = toy_examples(20, false);
        let records = rsd_obs::capture(|| {
            let (mut store, forward) = bias_only_forward(4);
            train_classifier(&mut store, &forward, &train, &train, &cfg, 9).unwrap();
        });
        let gauges_named = |name: &str| -> Vec<i128> {
            records
                .iter()
                .filter(|r| r["kind"] == "gauge" && r["label"] == name)
                .map(|r| match &r["epoch"] {
                    rsd_obs::Value::Int(e) => *e,
                    other => panic!("epoch tag missing: {other:?}"),
                })
                .collect()
        };
        assert_eq!(gauges_named("models.train.loss"), vec![0, 1, 2]);
        assert_eq!(gauges_named("models.train.accuracy"), vec![0, 1, 2]);
        // Loss values must be finite and positive (cross-entropy).
        for r in &records {
            if r["label"] == "models.train.loss" {
                match &r["value"] {
                    rsd_obs::Value::Float(v) => assert!(v.is_finite() && *v > 0.0),
                    other => panic!("non-float loss: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pretrain_pool_sampling_bounds() {
        let texts: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        let s = sample_pretrain_texts(&texts, 10, 5);
        assert_eq!(s.len(), 10);
        let all = sample_pretrain_texts(&texts, 1000, 5);
        assert_eq!(all.len(), 100);
        let a = sample_pretrain_texts(&texts, 10, 5);
        assert_eq!(s, a, "deterministic");
    }
}
