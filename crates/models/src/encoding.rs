//! Task encoding: user windows → token ids and temporal feature vectors.
//!
//! The temporal encoding follows the paper's §III-A2 "three
//! multi-dimensional encoding strategies":
//!
//! * **periodic** — sin/cos of hour-of-day, day-of-week and month;
//! * **interval** — log-scaled gap to the previous post and the
//!   gap-to-mean ratio;
//! * **cumulative** — position within the window and night/weekend flags.
//!
//! Each post in a window gets one [`TIME_FEATURE_DIM`]-wide vector; neural
//! baselines project it into model space and fuse it with text
//! representations.

use rsd_common::Timestamp;
use rsd_corpus::RiskLevel;
use rsd_dataset::{Rsd15k, UserWindow};
use rsd_text::Vocabulary;

/// Width of the per-post temporal feature vector.
pub const TIME_FEATURE_DIM: usize = 11;

/// Temporal features for one post in a window.
pub fn time_vector(timestamps: &[Timestamp], idx: usize) -> [f32; TIME_FEATURE_DIM] {
    let t = timestamps[idx];
    let hour = f32::from(t.hour());
    let weekday = t.weekday().index() as f32;
    let month = (t.month_index() % 12) as f32;
    let two_pi = std::f32::consts::TAU;

    // Interval features.
    let gap_days = if idx == 0 {
        0.0
    } else {
        t.days_since(timestamps[idx - 1]) as f32
    };
    let mean_gap = if timestamps.len() >= 2 {
        (timestamps[timestamps.len() - 1].days_since(timestamps[0]) / (timestamps.len() - 1) as f64)
            as f32
    } else {
        0.0
    };
    let gap_ratio = if mean_gap > 0.0 {
        (gap_days / mean_gap).min(10.0)
    } else {
        1.0
    };

    [
        (two_pi * hour / 24.0).sin(),
        (two_pi * hour / 24.0).cos(),
        (two_pi * weekday / 7.0).sin(),
        (two_pi * weekday / 7.0).cos(),
        (two_pi * month / 12.0).sin(),
        (two_pi * month / 12.0).cos(),
        (1.0 + gap_days).ln(),
        gap_ratio,
        idx as f32 / timestamps.len().max(1) as f32,
        if t.is_night() { 1.0 } else { 0.0 },
        if t.is_weekend() { 1.0 } else { 0.0 },
    ]
}

/// One encoded task instance.
#[derive(Debug, Clone)]
pub struct EncodedWindow {
    /// Token ids per post (chronological; last = labelled post). Each
    /// sequence starts with `[CLS]` and is truncated to `max_tokens`.
    pub post_tokens: Vec<Vec<u32>>,
    /// Per-post temporal vectors, parallel to `post_tokens`.
    pub time_feats: Vec<[f32; TIME_FEATURE_DIM]>,
    /// Class index of the user-level label.
    pub label: usize,
}

impl EncodedWindow {
    /// Tokens of the labelled (latest) post.
    pub fn last_tokens(&self) -> &[u32] {
        self.post_tokens.last().expect("windows are never empty")
    }

    /// Window-context token stream for sequence-attention models: the
    /// labelled (latest) post first, then preceding posts newest-to-oldest,
    /// truncated to `max_tokens` total. The latest post keeps its leading
    /// `[CLS]`; earlier posts contribute their tokens after it, so the
    /// model can attend across the user's recent history (the paper's
    /// "analysis of user sequential posts within a specific time window").
    pub fn window_tokens(&self, max_tokens: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(max_tokens);
        for tokens in self.post_tokens.iter().rev() {
            for (i, &t) in tokens.iter().enumerate() {
                // Skip the [CLS] of non-final posts.
                if !out.is_empty() && i == 0 {
                    continue;
                }
                if out.len() >= max_tokens {
                    return out;
                }
                out.push(t);
            }
            if out.len() >= max_tokens {
                break;
            }
        }
        out
    }

    /// Temporal vector of the labelled post.
    pub fn last_time(&self) -> &[f32; TIME_FEATURE_DIM] {
        self.time_feats.last().expect("windows are never empty")
    }
}

/// Encoder from dataset windows to model inputs.
#[derive(Debug, Clone)]
pub struct TaskEncoder {
    /// Token vocabulary (fit on training texts).
    pub vocab: Vocabulary,
    /// Per-post token cap (including `[CLS]`).
    pub max_tokens: usize,
}

impl TaskEncoder {
    /// Fit the vocabulary on the training windows' texts.
    pub fn fit(
        dataset: &Rsd15k,
        train: &[UserWindow],
        max_vocab: usize,
        max_tokens: usize,
    ) -> TaskEncoder {
        let docs: Vec<&str> = train
            .iter()
            .flat_map(|w| {
                w.post_indices
                    .iter()
                    .map(|&i| dataset.posts[i].text.as_str())
            })
            .collect();
        let vocab = Vocabulary::build(docs, 2, Some(max_vocab));
        TaskEncoder { vocab, max_tokens }
    }

    /// Fit a vocabulary directly from unlabelled texts (pretraining pool).
    pub fn fit_on_texts(texts: &[String], max_vocab: usize, max_tokens: usize) -> TaskEncoder {
        let docs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let vocab = Vocabulary::build(docs, 2, Some(max_vocab));
        TaskEncoder { vocab, max_tokens }
    }

    /// Encode one window.
    pub fn encode(&self, dataset: &Rsd15k, window: &UserWindow) -> EncodedWindow {
        let mut post_tokens = Vec::with_capacity(window.post_indices.len());
        let mut time_feats = Vec::with_capacity(window.post_indices.len());
        for (k, &i) in window.post_indices.iter().enumerate() {
            post_tokens.push(self.encode_text(&dataset.posts[i].text));
            time_feats.push(time_vector(&window.timestamps, k));
        }
        EncodedWindow {
            post_tokens,
            time_feats,
            label: window.label.index(),
        }
    }

    /// Encode raw text into a `[CLS]`-prefixed, truncated id sequence
    /// (no padding — models process exact lengths).
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.max_tokens);
        ids.push(rsd_text::SpecialToken::Cls.id());
        for id in self.vocab.encode(text) {
            if ids.len() >= self.max_tokens {
                break;
            }
            ids.push(id);
        }
        ids
    }

    /// Encode all windows.
    pub fn encode_all(&self, dataset: &Rsd15k, windows: &[UserWindow]) -> Vec<EncodedWindow> {
        windows.iter().map(|w| self.encode(dataset, w)).collect()
    }

    /// Number of classes in the task.
    pub fn n_classes(&self) -> usize {
        RiskLevel::COUNT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamps() -> Vec<Timestamp> {
        vec![
            Timestamp::from_ymd_hms(2020, 6, 1, 12, 0, 0).unwrap(),
            Timestamp::from_ymd_hms(2020, 6, 3, 23, 30, 0).unwrap(),
            Timestamp::from_ymd_hms(2020, 6, 6, 2, 0, 0).unwrap(),
        ]
    }

    #[test]
    fn time_vector_width_and_bounds() {
        let ts = stamps();
        for i in 0..ts.len() {
            let v = time_vector(&ts, i);
            assert_eq!(v.len(), TIME_FEATURE_DIM);
            assert!(v.iter().all(|x| x.is_finite()));
            // Periodic components live in [-1, 1].
            for p in &v[..6] {
                assert!((-1.0..=1.0).contains(p));
            }
        }
    }

    #[test]
    fn night_flag_set_for_late_posts() {
        let ts = stamps();
        assert_eq!(time_vector(&ts, 0)[9], 0.0); // 12:00
        assert_eq!(time_vector(&ts, 1)[9], 1.0); // 23:30
        assert_eq!(time_vector(&ts, 2)[9], 1.0); // 02:00
    }

    #[test]
    fn gap_features_progress() {
        let ts = stamps();
        assert_eq!(time_vector(&ts, 0)[6], 0.0, "first post has no gap");
        assert!(time_vector(&ts, 1)[6] > 0.0);
        let pos0 = time_vector(&ts, 0)[8];
        let pos2 = time_vector(&ts, 2)[8];
        assert!(pos2 > pos0, "window position increases");
    }

    #[test]
    fn encode_text_has_cls_and_truncates() {
        let texts = vec!["one two three four five six".to_string(); 3];
        let enc = TaskEncoder::fit_on_texts(&texts, 100, 4);
        let ids = enc.encode_text(&texts[0]);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], rsd_text::SpecialToken::Cls.id());
    }

    #[test]
    fn encode_window_on_built_dataset() {
        use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
        let (d, _) = DatasetBuilder::new(BuildConfig::scaled(601, 1_500, 20))
            .build()
            .unwrap();
        let s = DatasetSplits::new(&d, SplitConfig::default()).unwrap();
        let enc = TaskEncoder::fit(&d, &s.train, 500, 32);
        let encoded = enc.encode_all(&d, &s.test);
        assert_eq!(encoded.len(), s.test.len());
        for e in &encoded {
            assert_eq!(e.post_tokens.len(), e.time_feats.len());
            assert!(!e.post_tokens.is_empty());
            assert!(e.label < 4);
            assert!(e.last_tokens().len() >= 2, "CLS plus at least one token");
        }
    }
}
