//! The two PLM baselines (paper §III-A4/A5): RoBERTa-style and
//! DeBERTa-style transformer classifiers.
//!
//! Both share the recipe:
//!
//! 1. **Pretrain** the encoder with MLM on the unlabelled pool
//!    ([`crate::pretrain`]) — the stand-in for public checkpoints.
//! 2. **Temporal fusion**: the window's multi-dimensional time encodings
//!    are projected into model space, attention-pooled across the window,
//!    and added to every token embedding of the labelled post (the
//!    "temporal projection layer ... mapped to the same semantic space as
//!    the text representation").
//! 3. **Fine-tune** with a classification head on the `[CLS]` state.
//!
//! The two variants differ exactly where the papers differ: RoBERTa uses
//! learned absolute positions with standard attention; DeBERTa uses
//! relative positions with disentangled content/position attention.

use rand::rngs::StdRng;

use crate::encoding::{EncodedWindow, TaskEncoder, TIME_FEATURE_DIM};
use crate::pretrain::{mlm_pretrain, PretrainConfig};
use crate::trainer::{
    augment_train_windows, evaluate, outcome_from_confusion, sample_pretrain_texts,
    train_classifier, BenchData, EvalOutcome, TrainConfig,
};
use rsd_common::rng::stream_rng;
use rsd_common::Result;
use rsd_corpus::RiskLevel;
use rsd_nn::layers::Linear;
use rsd_nn::matrix::Matrix;
use rsd_nn::transformer::{Encoder, EncoderConfig, MlmHead, PositionMode};
use rsd_nn::{ParamStore, Tape, Var};

/// Which PLM variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlmKind {
    /// Absolute positions + standard attention (RoBERTa-style).
    Roberta,
    /// Relative positions + disentangled attention (DeBERTa-style).
    Deberta,
}

impl PlmKind {
    /// Display name used in Table III.
    pub fn name(self) -> &'static str {
        match self {
            PlmKind::Roberta => "RoBERTa",
            PlmKind::Deberta => "DeBERTa",
        }
    }
}

/// PLM baseline hyperparameters.
#[derive(Debug, Clone)]
pub struct PlmConfig {
    /// Variant.
    pub kind: PlmKind,
    /// Vocabulary cap.
    pub max_vocab: usize,
    /// Token cap per post.
    pub max_tokens: usize,
    /// Total token cap for the concatenated window context fed to the
    /// encoder (≥ `max_tokens`; the latest post always comes first).
    pub window_tokens: usize,
    /// Model width.
    pub dim: usize,
    /// Encoder blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN inner width.
    pub ffn_dim: usize,
    /// Dropout during fine-tuning.
    pub dropout: f32,
    /// Relative-attention radius (DeBERTa only).
    pub radius: usize,
    /// Number of unlabelled texts used for MLM pretraining (0 disables —
    /// the "from scratch" ablation).
    pub pretrain_texts: usize,
    /// Whether to fuse temporal features into the token embeddings (the
    /// ablation for the paper's repeated temporal-fusion claim).
    pub temporal_fusion: bool,
    /// MLM pretraining settings.
    pub pretrain: PretrainConfig,
    /// Fine-tuning loop settings.
    pub train: TrainConfig,
}

impl PlmConfig {
    /// The Table III "Base"-style configuration for a variant.
    pub fn base(kind: PlmKind) -> Self {
        PlmConfig {
            kind,
            max_vocab: 2_000,
            max_tokens: 56,
            window_tokens: 96,
            dim: 48,
            layers: 2,
            heads: 4,
            ffn_dim: 96,
            dropout: 0.1,
            radius: 8,
            pretrain_texts: 3_000,
            temporal_fusion: true,
            pretrain: PretrainConfig::default(),
            train: TrainConfig {
                epochs: 6,
                lr: 1e-3,
                ..Default::default()
            },
        }
    }

    /// The Table IV "Large" configuration: more capacity, tuned schedule.
    pub fn large(kind: PlmKind) -> Self {
        PlmConfig {
            dim: 64,
            layers: 3,
            heads: 4,
            ffn_dim: 128,
            train: TrainConfig {
                epochs: 10,
                lr: 7e-4,
                balanced: true,
                ..Default::default()
            },
            ..Self::base(kind)
        }
    }
}

pub(crate) struct PlmModel {
    encoder: Encoder,
    time_proj: Linear,
    head: Linear,
    temporal_fusion: bool,
    window_tokens_cap: usize,
}

impl PlmModel {
    fn new(store: &mut ParamStore, cfg: &PlmConfig, vocab: usize, rng: &mut StdRng) -> Self {
        let positions = match cfg.kind {
            PlmKind::Roberta => PositionMode::Absolute,
            PlmKind::Deberta => PositionMode::Relative { radius: cfg.radius },
        };
        let enc_cfg = EncoderConfig {
            vocab,
            dim: cfg.dim,
            layers: cfg.layers,
            heads: cfg.heads,
            ffn_dim: cfg.ffn_dim,
            max_len: cfg.max_tokens.max(cfg.window_tokens),
            dropout: cfg.dropout,
            positions,
        };
        PlmModel {
            encoder: Encoder::new(store, "plm.enc", enc_cfg, rng),
            time_proj: Linear::new(store, "plm.time_proj", TIME_FEATURE_DIM, cfg.dim, rng),
            head: Linear::new(store, "plm.head", cfg.dim, RiskLevel::COUNT, rng),
            temporal_fusion: cfg.temporal_fusion,
            window_tokens_cap: cfg.window_tokens,
        }
    }

    /// Temporal fusion vector: project each window post's time encoding,
    /// mean-pool across the window (the attention-pooled multi-scale
    /// summary), returning 1×dim.
    fn time_summary(&self, tape: &mut Tape, store: &ParamStore, example: &EncodedWindow) -> Var {
        let w = example.time_feats.len();
        let data: Vec<f32> = example
            .time_feats
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        let raw = tape.constant(Matrix::from_vec(w, TIME_FEATURE_DIM, data));
        let projected = self.time_proj.forward(tape, store, raw);
        tape.mean_rows(projected)
    }

    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        example: &EncodedWindow,
        rng: &mut StdRng,
    ) -> Var {
        let ids = example.window_tokens(self.window_tokens_cap);
        let ids = ids.as_slice();
        // Broadcast the 1×dim temporal summary to every token row.
        let extra = if self.temporal_fusion {
            let summary = self.time_summary(tape, store, example);
            let ones = tape.constant(Matrix::full(ids.len(), 1, 1.0));
            Some(tape.matmul(ones, summary))
        } else {
            None
        };
        let states = self.encoder.forward(tape, store, ids, extra, rng);
        // Mean pooling over contextual states (more robust than CLS-only
        // for compact encoders).
        let pooled = tape.mean_rows(states);
        self.head.forward(tape, store, pooled)
    }
}

/// The runnable baseline.
pub struct PlmBaseline {
    cfg: PlmConfig,
}

impl PlmBaseline {
    /// Create with configuration.
    pub fn new(cfg: PlmConfig) -> Self {
        PlmBaseline { cfg }
    }

    /// Pretrain (if configured) and fine-tune, returning the trained
    /// artifact instead of discarding it — the inference fast path
    /// ([`crate::plm_infer`]) exports frozen weights from this.
    pub fn fit(&self, data: &BenchData<'_>) -> Result<FittedPlm> {
        let cfg = &self.cfg;
        // Vocabulary from the union of training texts and the pretraining
        // pool (a PLM's vocabulary comes from its pretraining corpus).
        let pool = sample_pretrain_texts(data.unlabeled, cfg.pretrain_texts, data.seed);
        let encoder = if pool.is_empty() {
            TaskEncoder::fit(
                data.dataset,
                &data.splits.train,
                cfg.max_vocab,
                cfg.max_tokens,
            )
        } else {
            let mut texts = pool.clone();
            for w in &data.splits.train {
                for &i in &w.post_indices {
                    texts.push(data.dataset.posts[i].text.clone());
                }
            }
            TaskEncoder::fit_on_texts(&texts, cfg.max_vocab, cfg.max_tokens)
        };

        let mut rng = stream_rng(data.seed, "plm.init");
        let mut store = ParamStore::new();
        let model = PlmModel::new(&mut store, cfg, encoder.vocab.len(), &mut rng);

        // Stage 1: in-domain MLM pretraining.
        let mut extra: Vec<(String, String)> = Vec::new();
        if !pool.is_empty() {
            let mlm_head = MlmHead::new(
                &mut store,
                "plm.mlm",
                cfg.dim,
                encoder.vocab.len(),
                &mut rng,
            );
            let loss = mlm_pretrain(
                &model.encoder,
                &mlm_head,
                &mut store,
                &encoder,
                &pool,
                &cfg.pretrain,
                data.seed,
            )?;
            extra.push(("mlm_texts".to_string(), pool.len().to_string()));
            extra.push(("mlm_final_loss".to_string(), format!("{loss:.4}")));
        } else {
            extra.push(("mlm_texts".to_string(), "0 (from scratch)".to_string()));
        }

        // Stage 2: supervised fine-tuning.
        let train_windows = augment_train_windows(
            data.dataset,
            &data.splits.train,
            data.splits.config.window,
            cfg.train.post_level_cap,
        );
        let train = encoder.encode_all(data.dataset, &train_windows);
        let valid = encoder.encode_all(data.dataset, &data.splits.valid);

        let forward = |tape: &mut Tape,
                       store: &ParamStore,
                       ex: &EncodedWindow,
                       rng: &mut StdRng| model.forward(tape, store, ex, rng);
        let history =
            train_classifier(&mut store, &forward, &train, &valid, &cfg.train, data.seed)?;
        extra.push(("epochs_run".to_string(), history.len().to_string()));

        Ok(FittedPlm {
            cfg: self.cfg.clone(),
            encoder,
            store,
            model,
            extra,
        })
    }

    /// Pretrain (if configured), fine-tune, and evaluate.
    pub fn run(&self, data: &BenchData<'_>) -> Result<EvalOutcome> {
        let fitted = self.fit(data)?;
        let test = fitted.encoder.encode_all(data.dataset, &data.splits.test);

        let model = &fitted.model;
        let forward = |tape: &mut Tape,
                       store: &ParamStore,
                       ex: &EncodedWindow,
                       rng: &mut StdRng| model.forward(tape, store, ex, rng);
        let mut eval_rng = stream_rng(data.seed, "plm.eval");
        let confusion = evaluate(&fitted.store, &forward, &test, &mut eval_rng)?;
        let mut extra = fitted.extra.clone();
        extra.push(("params".to_string(), fitted.store.n_scalars().to_string()));
        Ok(outcome_from_confusion(
            self.cfg.kind.name(),
            confusion,
            extra,
        ))
    }
}

/// A trained PLM kept whole — config, task encoder, parameter store and
/// model structure — so serving can export frozen inference weights
/// from it ([`crate::plm_infer::PlmInferenceModel::export`]).
pub struct FittedPlm {
    /// Hyperparameters the model was built with.
    pub cfg: PlmConfig,
    /// Tokenizer/vocabulary fitted on the training corpus.
    pub encoder: TaskEncoder,
    /// Trained parameters.
    pub store: ParamStore,
    pub(crate) model: PlmModel,
    /// Training-stage diagnostics (mlm loss, epochs run, ...).
    pub extra: Vec<(String, String)>,
}

impl FittedPlm {
    /// A randomly initialised (untrained) PLM over a synthetic
    /// vocabulary of `max_vocab` distinct words. Kernel benches and the
    /// quantization parity tests need the *structure* and realistic
    /// tensor shapes, not a fitted model; weights follow the usual init
    /// distributions from `seed`.
    pub fn synthetic(cfg: PlmConfig, seed: u64) -> FittedPlm {
        let words: Vec<String> = (0..cfg.max_vocab + 100).map(|i| format!("w{i}")).collect();
        let texts: Vec<String> = words.chunks(16).map(|chunk| chunk.join(" ")).collect();
        let encoder = TaskEncoder::fit_on_texts(&texts, cfg.max_vocab, cfg.max_tokens);
        let mut rng = stream_rng(seed, "plm.init");
        let mut store = ParamStore::new();
        let model = PlmModel::new(&mut store, &cfg, encoder.vocab.len(), &mut rng);
        FittedPlm {
            cfg,
            encoder,
            store,
            model,
            extra: Vec::new(),
        }
    }

    /// Reference logits through the full tape stack (`Tape::inference`)
    /// — the status-quo path the inference engines are pinned against.
    pub fn logits_tape(&self, example: &EncodedWindow) -> Vec<f32> {
        let mut tape = Tape::inference();
        // Dropout is identity in inference mode; the rng is never used.
        let mut rng = stream_rng(0, "plm.infer");
        let out = self
            .model
            .forward(&mut tape, &self.store, example, &mut rng);
        tape.value(out).row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};

    fn tiny_cfg(kind: PlmKind) -> PlmConfig {
        PlmConfig {
            kind,
            max_vocab: 300,
            max_tokens: 10,
            window_tokens: 16,
            dim: 8,
            layers: 1,
            heads: 2,
            ffn_dim: 16,
            dropout: 0.0,
            radius: 4,
            pretrain_texts: 20,
            temporal_fusion: true,
            pretrain: PretrainConfig {
                epochs: 1,
                batch: 8,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 1,
                batch: 8,
                patience: 0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn both_variants_run_end_to_end() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(803, 1_200, 20))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let unlabeled: Vec<String> = dataset
            .posts
            .iter()
            .take(30)
            .map(|p| p.text.clone())
            .collect();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &unlabeled,
            seed: 803,
        };
        for kind in [PlmKind::Roberta, PlmKind::Deberta] {
            let outcome = PlmBaseline::new(tiny_cfg(kind)).run(&data).unwrap();
            assert_eq!(outcome.report.model, kind.name());
            assert_eq!(outcome.confusion.total() as usize, splits.test.len());
            assert!(outcome.extra.iter().any(|(k, _)| k == "mlm_final_loss"));
        }
    }

    #[test]
    fn large_config_has_more_capacity_than_base() {
        let base = PlmConfig::base(PlmKind::Deberta);
        let large = PlmConfig::large(PlmKind::Deberta);
        assert!(large.dim > base.dim);
        assert!(large.layers > base.layers);
        assert!(large.train.balanced && !base.train.balanced);
    }

    #[test]
    fn from_scratch_mode_skips_pretraining() {
        let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(804, 1_200, 20))
            .build()
            .unwrap();
        let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
        let data = BenchData {
            dataset: &dataset,
            splits: &splits,
            unlabeled: &[],
            seed: 804,
        };
        let mut cfg = tiny_cfg(PlmKind::Roberta);
        cfg.pretrain_texts = 0;
        let outcome = PlmBaseline::new(cfg).run(&data).unwrap();
        assert!(outcome
            .extra
            .iter()
            .any(|(k, v)| k == "mlm_texts" && v.contains("from scratch")));
    }
}
