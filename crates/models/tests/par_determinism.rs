//! Thread-count independence of the training loop: `train_classifier`
//! and `evaluate` must produce bit-identical histories and identical
//! confusion matrices whether examples fan out over 1 thread, 4
//! threads, or run serially — the satellite guarantee behind "same
//! table-3 metrics for any `RSD_THREADS`".

use rsd_common::rng::stream_rng;
use rsd_models::encoding::TIME_FEATURE_DIM;
use rsd_models::trainer::{bias_only_forward, evaluate, train_classifier};
use rsd_models::{EncodedWindow, TrainConfig};

fn toy_examples(n: usize) -> Vec<EncodedWindow> {
    (0..n)
        .map(|i| {
            let label = i % 4;
            EncodedWindow {
                post_tokens: vec![vec![2, 5 + label as u32]],
                time_feats: vec![[0.0; TIME_FEATURE_DIM]],
                label,
            }
        })
        .collect()
}

fn run_once() -> (Vec<u64>, Vec<Vec<u64>>) {
    let (mut store, forward) = bias_only_forward(4);
    let train = toy_examples(60);
    let valid = toy_examples(24);
    let cfg = TrainConfig {
        epochs: 3,
        batch: 8,
        patience: 0,
        ..Default::default()
    };
    let history = train_classifier(&mut store, &forward, &train, &valid, &cfg, 11).unwrap();
    let mut rng = stream_rng(11, "par.determinism.eval");
    let confusion = evaluate(&store, &forward, &valid, &mut rng).unwrap();
    let table: Vec<Vec<u64>> = (0..confusion.n_classes())
        .map(|t| {
            (0..confusion.n_classes())
                .map(|p| confusion.get(t, p))
                .collect()
        })
        .collect();
    (history.iter().map(|f| f.to_bits()).collect(), table)
}

#[test]
fn training_metrics_identical_across_thread_counts() {
    let serial = rsd_par::run_serial(run_once);
    let one = rsd_par::with_local_pool(1, run_once);
    let four = rsd_par::with_local_pool(4, run_once);
    assert_eq!(serial, one, "serial vs 1-thread pool diverged");
    assert_eq!(serial, four, "serial vs 4-thread pool diverged");
}
