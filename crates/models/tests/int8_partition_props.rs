//! Partition invariance of the quantized scorer: int8 window logits and
//! batch scores must be bitwise identical whether windows run serially,
//! on 1- or 4-thread pools, through reused or fresh scratch buffers, or
//! split across separate `score_windows` calls. Integer accumulation
//! makes this exact, so every comparison here is equality, not epsilon.

use std::sync::OnceLock;

use proptest::prelude::*;
use rsd_models::encoding::TIME_FEATURE_DIM;
use rsd_models::{EncodedWindow, FittedPlm, PlmConfig, PlmInferenceModel, PlmKind, PlmScratch};

/// One frozen synthetic engine for the whole file: the property is
/// about execution shape, not weights, and export is the slow part.
fn engine() -> &'static (PlmInferenceModel, usize) {
    static ENGINE: OnceLock<(PlmInferenceModel, usize)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let fitted = FittedPlm::synthetic(PlmConfig::base(PlmKind::Deberta), 23);
        let vocab = fitted.encoder.vocab.len();
        (PlmInferenceModel::export(&fitted), vocab)
    })
}

/// Deterministic pseudo-random window (mirrors the bench generator).
fn pseudo_window(vocab: usize, posts: usize, tokens: usize, salt: u64) -> EncodedWindow {
    let hash = |i: u64| {
        (i ^ salt)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(21)
    };
    EncodedWindow {
        post_tokens: (0..posts)
            .map(|p| {
                (0..tokens)
                    .map(|t| (hash((p * tokens + t) as u64) % vocab as u64) as u32)
                    .collect()
            })
            .collect(),
        time_feats: (0..posts)
            .map(|p| {
                std::array::from_fn(|d| {
                    let h = hash((100_000 + p * TIME_FEATURE_DIM + d) as u64);
                    ((h % 1000) as f32) / 500.0 - 1.0
                })
            })
            .collect(),
        label: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    fn int8_scores_identical_across_pools_and_batch_splits(
        n in 1usize..20,
        posts in 1usize..4,
        split_frac in 0.0f64..1.0,
        salt in 0u64..u64::MAX,
    ) {
        let (engine, vocab) = engine();
        let windows: Vec<EncodedWindow> = (0..n)
            .map(|i| pseudo_window(*vocab, posts, 12, salt ^ (i as u64) << 8))
            .collect();

        // Per-window logits: reused scratch vs fresh scratch per call.
        let mut reused = PlmScratch::default();
        let with_reuse: Vec<Vec<u32>> = windows
            .iter()
            .map(|w| engine.logits_i8(w, &mut reused).iter().map(|v| v.to_bits()).collect())
            .collect();
        let with_fresh: Vec<Vec<u32>> = windows
            .iter()
            .map(|w| {
                engine
                    .logits_i8(w, &mut PlmScratch::default())
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        prop_assert_eq!(&with_reuse, &with_fresh);

        // Batch scores: serial, 1-thread pool, 4-thread pool.
        let serial = rsd_par::run_serial(|| engine.score_windows(&windows, true));
        let pool1 = rsd_par::with_local_pool(1, || engine.score_windows(&windows, true));
        let pool4 = rsd_par::with_local_pool(4, || engine.score_windows(&windows, true));
        prop_assert_eq!(&serial, &pool1);
        prop_assert_eq!(&serial, &pool4);

        // Splitting the batch at an arbitrary point and concatenating
        // must reproduce the one-shot scores.
        let cut = ((n as f64) * split_frac) as usize;
        let mut split = rsd_par::with_local_pool(4, || engine.score_windows(&windows[..cut], true));
        split.extend(rsd_par::with_local_pool(4, || {
            engine.score_windows(&windows[cut..], true)
        }));
        prop_assert_eq!(&serial, &split);
    }
}
