//! Integration: everything is byte-reproducible from the master seed, and
//! distinct seeds genuinely decorrelate.

use rsd15k::prelude::*;

#[test]
fn identical_seeds_identical_datasets() {
    let a = DatasetBuilder::new(BuildConfig::scaled(8001, 2_000, 30))
        .build()
        .unwrap()
        .0;
    let b = DatasetBuilder::new(BuildConfig::scaled(8001, 2_000, 30))
        .build()
        .unwrap()
        .0;
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ_everywhere() {
    let a = DatasetBuilder::new(BuildConfig::scaled(8002, 2_000, 30))
        .build()
        .unwrap()
        .0;
    let b = DatasetBuilder::new(BuildConfig::scaled(8003, 2_000, 30))
        .build()
        .unwrap()
        .0;
    assert_ne!(a, b);
    // Texts differ, not just ids.
    assert_ne!(a.posts[0].text, b.posts[0].text);
}

#[test]
fn split_and_model_seeds_are_independent_of_build() {
    let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(8004, 2_000, 30))
        .build()
        .unwrap();
    let s1 = DatasetSplits::new(
        &dataset,
        SplitConfig {
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let s2 = DatasetSplits::new(
        &dataset,
        SplitConfig {
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let s3 = DatasetSplits::new(
        &dataset,
        SplitConfig {
            seed: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(s1.train, s2.train);
    assert_ne!(s1.train, s3.train);
}
