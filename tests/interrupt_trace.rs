//! Kill-and-resume telemetry harness: a streaming build that dies from
//! an injected interrupt must still leave a *complete* NDJSON trace —
//! the abort path flushes the sink before the error propagates, so no
//! buffered records are lost. Own test binary because the sink mode
//! latches process-wide.

use rsd15k::obs;
use rsd_dataset::{BuildConfig, DatasetBuilder, StreamingOptions};
use rsd_pipeline::PipelineConfig;

fn opts(dir: &std::path::Path) -> StreamingOptions {
    StreamingOptions {
        pipeline: PipelineConfig {
            shard_users: 8,
            shards_in_flight: 2,
            interrupt_after_shards: None,
        },
        checkpoint_dir: Some(dir.join("ckpt")),
        interrupt_after_stage: None,
    }
}

#[test]
fn interrupted_build_flushes_a_complete_trace() {
    let dir = std::env::temp_dir().join(format!("rsd_interrupt_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ndjson = dir.join("trace.ndjson");
    assert!(obs::init(obs::Mode::File(ndjson.clone())));

    let builder = DatasetBuilder::new(BuildConfig::scaled(5, 2_500, 48));
    let mut killed = opts(&dir);
    killed.pipeline.interrupt_after_shards = Some(2);
    let err = builder.build_streaming(&killed).unwrap_err();
    assert!(err.to_string().contains("interrupted"), "{err}");

    // Deliberately no obs::flush() here: the abort path inside
    // build_streaming must have flushed for the trace to be complete.
    let raw = std::fs::read_to_string(&ndjson).unwrap();
    assert!(!raw.is_empty(), "interrupted build left an empty trace");
    let records: Vec<obs::Value> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("truncated or malformed NDJSON line"))
        .collect();
    let aborted = records
        .iter()
        .find(|r| r["kind"] == "event" && r["label"] == "pipeline.aborted")
        .expect("no pipeline.aborted event in trace");
    assert!(
        aborted["error"].as_str().unwrap().contains("interrupted"),
        "aborted event lacks the interrupt cause: {aborted}"
    );
    // Work that completed before the kill is in the trace: shard tags
    // from the two folded shards and at least one checkpoint write.
    assert!(
        records.iter().any(|r| r["label"] == "pipeline.stage.shard"),
        "no shard-tag events before the interrupt"
    );
    assert!(
        records
            .iter()
            .any(|r| r["label"] == "pipeline.checkpoint.write"),
        "no checkpoint writes recorded before the interrupt"
    );

    // The resume leg of the harness: same checkpoint dir, no interrupt —
    // the build completes and replays the persisted shards.
    let out = builder.build_streaming(&opts(&dir)).unwrap();
    assert!(
        out.pipeline.checkpoint_hits >= 2,
        "resume replayed only {} checkpoints",
        out.pipeline.checkpoint_hits
    );
    assert!(out.dataset.n_posts() > 0);
    obs::flush();
    let resumed = std::fs::read_to_string(&ndjson).unwrap();
    assert!(
        resumed
            .lines()
            .map(|l| serde_json::from_str::<obs::Value>(l).expect("malformed line after resume"))
            .any(|r| r["label"] == "pipeline.checkpoint.hit"),
        "resume recorded no checkpoint hits in the trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}
