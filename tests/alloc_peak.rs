//! Allocation-tracking proof of the streaming pipeline's bounded-memory
//! claim: with the counting allocator installed, the streaming build's
//! peak live bytes must come in under the batch build's for the same
//! config. Lives in its own test binary because `#[global_allocator]`
//! is process-wide and the telemetry mode latches on first use.

use rsd15k::obs;
use rsd_dataset::{BuildConfig, DatasetBuilder, StreamingOptions};
use rsd_pipeline::PipelineConfig;

#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

#[test]
fn streaming_build_peaks_below_batch() {
    // Registry on, no NDJSON sink — we only want gauges. Counting arms
    // at init; the probe allocation below is the first one observed.
    assert!(obs::init(obs::Mode::Silent));
    std::hint::black_box(vec![0u8; 4096]);
    assert!(obs::alloc::active(), "counting allocator not installed");

    let cfg = BuildConfig::scaled(2026, 8_000, 96);
    let builder = DatasetBuilder::new(cfg);

    let base = obs::alloc::live_bytes();
    obs::alloc::reset_peak();
    let batch_posts = {
        let (dataset, _pool, _report) = builder.build_batch_with_pool().unwrap();
        dataset.n_posts()
    };
    let batch_peak = obs::alloc::peak_live_bytes().saturating_sub(base);
    assert!(batch_peak > 0, "allocator saw no batch-build traffic");

    // Small shards, two in flight: the streaming working set is a wave,
    // not the whole raw corpus.
    let opts = StreamingOptions {
        pipeline: PipelineConfig {
            shard_users: 16,
            shards_in_flight: 2,
            interrupt_after_shards: None,
        },
        checkpoint_dir: None,
        interrupt_after_stage: None,
    };
    let base = obs::alloc::live_bytes();
    obs::alloc::reset_peak();
    let stream_posts = {
        let out = builder.build_streaming(&opts).unwrap();
        out.dataset.n_posts()
    };
    let stream_peak = obs::alloc::peak_live_bytes().saturating_sub(base);

    assert_eq!(batch_posts, stream_posts, "builds diverged");
    assert!(
        stream_peak < batch_peak,
        "streaming peak {stream_peak} B not below batch peak {batch_peak} B"
    );

    // The successful streaming build published the allocator gauges.
    let gauges = &obs::snapshot()["gauges"];
    for key in [
        "alloc.allocated_bytes",
        "alloc.live_bytes",
        "alloc.peak_live_bytes",
        "alloc.allocations",
    ] {
        assert!(
            gauges[key].as_f64().is_some(),
            "missing allocator gauge {key}: {gauges}"
        );
    }
    assert!(gauges["alloc.peak_live_bytes"].as_f64().unwrap() > 0.0);
}
