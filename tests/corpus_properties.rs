//! Property tests on the corpus generator: structural invariants hold for
//! arbitrary seeds and scales.

use proptest::prelude::*;
use rsd15k::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_corpora_are_structurally_sound(
        seed in 0u64..10_000,
        users in 50usize..300,
    ) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(seed, users))
            .unwrap()
            .generate();
        prop_assert_eq!(corpus.users.len(), users);
        // Dense ids, author consistency, chronological timelines.
        for (i, post) in corpus.posts.iter().enumerate() {
            prop_assert_eq!(post.id.0 as usize, i);
            prop_assert!(!post.body.is_empty());
        }
        for user in &corpus.users {
            prop_assert!(!user.post_ids.is_empty());
            let mut prev = Timestamp(i64::MIN);
            for pid in &user.post_ids {
                let p = corpus.post(*pid).unwrap();
                prop_assert_eq!(p.author, user.id);
                prop_assert!(p.created >= prev);
                prev = p.created;
            }
        }
        // Every post belongs to exactly one user timeline.
        let total_in_timelines: usize =
            corpus.users.iter().map(|u| u.post_ids.len()).sum();
        prop_assert_eq!(total_in_timelines, corpus.posts.len());
        // Reposts always reference an earlier post of the same author.
        for p in &corpus.posts {
            if let Some(orig) = p.duplicate_of {
                let o = corpus.post(orig).unwrap();
                prop_assert_eq!(o.author, p.author);
                prop_assert!(o.created <= p.created);
                prop_assert_eq!(&o.body, &p.body);
            }
        }
    }

    #[test]
    fn preprocessing_never_increases_posts(
        seed in 0u64..10_000,
        users in 50usize..200,
    ) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(seed, users))
            .unwrap()
            .generate();
        let bodies: Vec<String> = corpus.posts.iter().map(|p| p.body.clone()).collect();
        let out = Preprocessor::default().run(&bodies);
        prop_assert_eq!(out.report.total, bodies.len());
        prop_assert!(out.report.kept <= out.report.total);
        prop_assert_eq!(
            out.report.total,
            out.report.kept
                + out.report.removed_irrelevant
                + out.report.removed_duplicates
                + out.report.removed_too_short
        );
        // Dedup must catch every generator-marked duplicate whose original
        // was also kept in the pool (guaranteed recall on exact reposts).
        let dup_marked = corpus
            .posts
            .iter()
            .filter(|p| p.duplicate_of.is_some())
            .count();
        prop_assert!(out.report.removed_duplicates >= dup_marked / 2);
    }
}
