//! Serving-vs-batch equivalence: replaying the corpus through the
//! online `rsd-serve` scorer must reproduce the batch table-3 inference
//! path score-for-score. After a user's last post is ingested, the
//! service's window for them is exactly the batch latest-W selection
//! (same store implementation), and `score_stream` reads the same raw
//! feature row `score_windows` does — so the final served level for
//! every test-split user must equal the batch prediction, bit for bit.

use std::collections::HashMap;
use std::sync::Arc;

use rsd_dataset::{BuildConfig, DatasetBuilder, DatasetSplits, SplitConfig};
use rsd_gbdt::BoosterConfig;
use rsd_models::{BenchData, ScoringModel, ServeModel, XgboostConfig};
use rsd_serve::{IncomingPost, RiskService, ScoredPost, ServeConfig};

#[test]
fn service_final_scores_match_batch_inference() {
    let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(77, 2_000, 36))
        .build()
        .expect("build dataset");
    let splits = DatasetSplits::new(&dataset, SplitConfig::default()).expect("splits");
    let data = BenchData {
        dataset: &dataset,
        splits: &splits,
        unlabeled: &[],
        seed: 77,
    };
    let cfg = XgboostConfig {
        max_tfidf: 80,
        post_level_cap: 3,
        booster: BoosterConfig {
            n_classes: 4,
            n_rounds: 10,
            early_stopping: 0,
            ..Default::default()
        },
    };
    let model = Arc::new(ScoringModel::fit(&cfg, &data).expect("fit"));

    let batch = model.score_windows(&dataset, &splits.test);

    // Replay every post in global chronological order, ample LRU so no
    // test user's window is evicted before their last post scores.
    let mut order: Vec<usize> = (0..dataset.posts.len()).collect();
    order.sort_by_key(|&i| (dataset.posts[i].created, dataset.posts[i].id));
    let service = RiskService::start(
        Arc::clone(&model),
        ServeConfig {
            shards: 4,
            lru_capacity: 4096,
            batch_max: 32,
            channel_cap: dataset.posts.len() + 1,
            model: ServeModel::Gbdt,
            inject_stall_ms: None,
        },
    );
    let results = service.results();
    for i in order {
        let p = &dataset.posts[i];
        service
            .submit(IncomingPost {
                user: p.user.0,
                post: p.id.0,
                created: p.created,
                text: p.text.clone(),
            })
            .expect("submit");
    }
    let report = service.drain();
    assert_eq!(report.scored as usize, dataset.posts.len());
    assert_eq!(report.evicted_users, 0, "ample LRU must not evict");

    // Results arrive in submission order; the last result per user is
    // their score over the full-history window.
    let mut last: HashMap<u32, ScoredPost> = HashMap::new();
    while let Some(scored) = results.recv() {
        last.insert(scored.user, scored);
    }

    assert!(!splits.test.is_empty());
    for (w, &expect) in splits.test.iter().zip(&batch) {
        let got = &last[&w.user.0];
        assert_eq!(
            got.level.index(),
            expect,
            "served score diverged from batch inference for user {}",
            w.user.0
        );
        assert_eq!(got.window_len, w.post_indices.len(), "window size");
        let total = dataset
            .users
            .iter()
            .find(|u| u.id == w.user)
            .map(|u| u.post_indices.len())
            .expect("test user exists");
        assert_eq!(got.total_seen as usize, total, "posts seen");
    }
}
