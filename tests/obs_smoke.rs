//! Facade-level telemetry smoke test: a tiny end-to-end dataset build with
//! the NDJSON sink pointed at a temp file, then structural checks on the
//! event stream, the RunReport artifact (meta block, span call-tree), and
//! the collapsed-stack profile round-trip.
//!
//! Kept as a single `#[test]` because the telemetry mode latches on first
//! use — one test owns the process-wide sink for this binary.

use rsd15k::obs;
use rsd15k::prelude::*;
use rsd_bench::{Prepared, Scale};

#[test]
fn ndjson_sink_and_run_report_round_trip() {
    let dir = std::env::temp_dir().join(format!("rsd_obs_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ndjson = dir.join("events.ndjson");

    // Profiling on (latched on first read), sink to the temp file — both
    // before any instrumented code runs.
    std::env::set_var("RSD_OBS_PROFILE", "1");
    assert!(obs::profile_enabled());
    assert!(obs::init(obs::Mode::File(ndjson.clone())));
    assert!(obs::enabled());

    let prepared = Prepared::build(Scale::Small, 77);
    assert!(prepared.dataset.n_posts() > 0);

    let mut run = RunReport::new("obs_smoke", "small", 77);
    run.set("posts", obs::Value::Int(prepared.dataset.n_posts() as i128));
    let report_path = dir.join("obs_smoke.report.json");
    run.write_to(&report_path).unwrap();
    obs::flush();

    // Every sink line must parse as a JSON object with the record envelope.
    let raw = std::fs::read_to_string(&ndjson).unwrap();
    let records: Vec<rsd15k::obs::Value> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("malformed NDJSON line"))
        .collect();
    assert!(!records.is_empty(), "sink captured no events");
    for r in &records {
        assert!(
            !matches!(r["ts_ms"], obs::Value::Null),
            "missing ts_ms: {r}"
        );
        assert!(!matches!(r["kind"], obs::Value::Null), "missing kind: {r}");
        assert!(
            !matches!(r["label"], obs::Value::Null),
            "missing label: {r}"
        );
    }

    // The build must have produced spans for every major pipeline stage.
    let span_labels: Vec<&str> = records
        .iter()
        .filter(|r| r["kind"] == "span")
        .filter_map(|r| r["label"].as_str())
        .collect();
    for expected in [
        "bench.prepare",
        "dataset.build",
        "dataset.build.streaming",
        "pipeline.shards",
        "pipeline.shard.corpus",
        "pipeline.shard.preprocess",
        "pipeline.merge",
        "pipeline.select",
        "pipeline.annotate",
        "annotation.campaign",
        "annotation.campaign.day",
    ] {
        assert!(
            span_labels.contains(&expected),
            "no span record for {expected}; saw {span_labels:?}"
        );
    }

    // The report JSON embeds identity, wall-clock, and the metrics snapshot.
    let report: rsd15k::obs::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report["bin"], "obs_smoke");
    assert_eq!(report["scale"], "small");
    assert_eq!(report["seed"], 77);
    assert!(!matches!(report["elapsed_ms"], obs::Value::Null));
    let spans = &report["metrics"]["spans"];
    assert!(
        !matches!(spans["dataset.build"], obs::Value::Null),
        "report metrics missing dataset.build span stat: {report}"
    );
    let counters = &report["metrics"]["counters"];
    assert!(!matches!(counters["textproc.posts_in"], obs::Value::Null));

    // The meta block pins the run's environment: core count, effective
    // thread budget, git revision, telemetry switches.
    let meta = &report["meta"];
    assert!(meta["host_cores"].as_i64().unwrap() >= 1, "meta: {meta}");
    assert!(meta["rsd_threads"].as_i64().unwrap() >= 1, "meta: {meta}");
    assert!(!meta["git_rev"].as_str().unwrap().is_empty());
    assert_eq!(meta["profile"], true);
    assert!(meta["obs_mode"].as_str().unwrap().starts_with("file:"));

    // The hierarchical call tree keys spans by their full stack path and
    // attributes self-time separately from child time.
    let tree = &report["metrics"]["tree"];
    let build = &tree["bench.prepare;dataset.build"];
    assert!(
        !matches!(build, obs::Value::Null),
        "tree missing bench.prepare;dataset.build: {tree}"
    );
    let total = build["total_ms"].as_f64().unwrap();
    let self_ms = build["self_ms"].as_f64().unwrap();
    assert!(
        self_ms <= total + 1e-9,
        "self_ms {self_ms} exceeds total_ms {total}"
    );
    assert!(!matches!(
        tree["bench.prepare;dataset.build;dataset.build.streaming"],
        obs::Value::Null
    ));

    // RSD_OBS_PROFILE=1 emits a non-empty folded profile that round-trips
    // through the parser.
    let folded_path = run.write_profile().unwrap().expect("profiling is on");
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(!folded.is_empty(), "folded profile is empty");
    let parsed = obs::parse_folded(&folded).unwrap();
    assert_eq!(parsed.len(), obs::registry().tree().len());
    assert!(parsed
        .iter()
        .any(|(path, _)| path == "bench.prepare;dataset.build"));
    assert_eq!(obs::render_folded(&obs::registry().tree()), folded);
    std::fs::remove_file(&folded_path).ok();

    std::fs::remove_dir_all(&dir).ok();
}
