//! Facade-level telemetry smoke test: a tiny end-to-end dataset build with
//! the NDJSON sink pointed at a temp file, then structural checks on both
//! the event stream and the RunReport artifact.
//!
//! Kept as a single `#[test]` because the telemetry mode latches on first
//! use — one test owns the process-wide sink for this binary.

use rsd15k::obs;
use rsd15k::prelude::*;
use rsd_bench::{Prepared, Scale};

#[test]
fn ndjson_sink_and_run_report_round_trip() {
    let dir = std::env::temp_dir().join(format!("rsd_obs_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ndjson = dir.join("events.ndjson");

    // Latch telemetry to the temp file before any instrumented code runs.
    assert!(obs::init(obs::Mode::File(ndjson.clone())));
    assert!(obs::enabled());

    let prepared = Prepared::build(Scale::Small, 77);
    assert!(prepared.dataset.n_posts() > 0);

    let mut run = RunReport::new("obs_smoke", "small", 77);
    run.set("posts", obs::Value::Int(prepared.dataset.n_posts() as i128));
    let report_path = dir.join("obs_smoke.report.json");
    run.write_to(&report_path).unwrap();
    obs::flush();

    // Every sink line must parse as a JSON object with the record envelope.
    let raw = std::fs::read_to_string(&ndjson).unwrap();
    let records: Vec<rsd15k::obs::Value> = raw
        .lines()
        .map(|l| serde_json::from_str(l).expect("malformed NDJSON line"))
        .collect();
    assert!(!records.is_empty(), "sink captured no events");
    for r in &records {
        assert!(
            !matches!(r["ts_ms"], obs::Value::Null),
            "missing ts_ms: {r}"
        );
        assert!(!matches!(r["kind"], obs::Value::Null), "missing kind: {r}");
        assert!(
            !matches!(r["label"], obs::Value::Null),
            "missing label: {r}"
        );
    }

    // The build must have produced spans for every major pipeline stage.
    let span_labels: Vec<&str> = records
        .iter()
        .filter(|r| r["kind"] == "span")
        .filter_map(|r| r["label"].as_str())
        .collect();
    for expected in [
        "bench.prepare",
        "dataset.build",
        "dataset.build.streaming",
        "pipeline.shards",
        "pipeline.shard.corpus",
        "pipeline.shard.preprocess",
        "pipeline.merge",
        "pipeline.select",
        "pipeline.annotate",
        "annotation.campaign",
        "annotation.campaign.day",
    ] {
        assert!(
            span_labels.contains(&expected),
            "no span record for {expected}; saw {span_labels:?}"
        );
    }

    // The report JSON embeds identity, wall-clock, and the metrics snapshot.
    let report: rsd15k::obs::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report["bin"], "obs_smoke");
    assert_eq!(report["scale"], "small");
    assert_eq!(report["seed"], 77);
    assert!(!matches!(report["elapsed_ms"], obs::Value::Null));
    let spans = &report["metrics"]["spans"];
    assert!(
        !matches!(spans["dataset.build"], obs::Value::Null),
        "report metrics missing dataset.build span stat: {report}"
    );
    let counters = &report["metrics"]["counters"];
    assert!(!matches!(counters["textproc.posts_in"], obs::Value::Null));

    std::fs::remove_dir_all(&dir).ok();
}
