//! Integration: every baseline trains end-to-end on a small build and
//! produces a coherent report.

use rsd15k::models::pretrain::PretrainConfig;
use rsd15k::prelude::*;

fn bench_fixture() -> (Rsd15k, DatasetSplits, Vec<String>) {
    let (dataset, unlabeled, _) = DatasetBuilder::new(BuildConfig::scaled(9001, 2_500, 40))
        .build_with_pool()
        .unwrap();
    let splits = DatasetSplits::new(&dataset, SplitConfig::default()).unwrap();
    (dataset, splits, unlabeled)
}

#[test]
fn xgboost_beats_uniform_chance() {
    let (dataset, splits, _) = bench_fixture();
    let data = BenchData {
        dataset: &dataset,
        splits: &splits,
        unlabeled: &[],
        seed: 9001,
    };
    let outcome = XgboostBaseline::new(XgboostConfig::default())
        .run(&data)
        .unwrap();
    assert!(
        outcome.report.accuracy >= 0.25,
        "acc {}",
        outcome.report.accuracy
    );
    assert_eq!(outcome.confusion.total() as usize, splits.test.len());
}

#[test]
fn all_neural_baselines_run() {
    let (dataset, splits, unlabeled) = bench_fixture();
    let data = BenchData {
        dataset: &dataset,
        splits: &splits,
        unlabeled: &unlabeled,
        seed: 9001,
    };
    let tiny_train = TrainConfig {
        epochs: 1,
        batch: 8,
        patience: 0,
        ..Default::default()
    };

    let bilstm = BiLstmBaseline::new(BiLstmConfig {
        max_vocab: 400,
        max_tokens: 16,
        window_tokens: 24,
        emb_dim: 8,
        hidden: 8,
        heads: 2,
        train: tiny_train.clone(),
    })
    .run(&data)
    .unwrap();
    assert_eq!(bilstm.report.model, "BiLSTM");

    let higru = HiGruBaseline::new(HiGruConfig {
        max_vocab: 400,
        max_tokens: 12,
        emb_dim: 8,
        token_hidden: 4,
        post_hidden: 8,
        heads: 2,
        train: tiny_train.clone(),
    })
    .run(&data)
    .unwrap();
    assert_eq!(higru.report.model, "HiGRU");

    for kind in [PlmKind::Roberta, PlmKind::Deberta] {
        let outcome = PlmBaseline::new(PlmConfig {
            max_vocab: 400,
            max_tokens: 12,
            window_tokens: 20,
            dim: 8,
            layers: 1,
            heads: 2,
            ffn_dim: 16,
            pretrain_texts: 40,
            pretrain: PretrainConfig {
                epochs: 1,
                ..Default::default()
            },
            train: tiny_train.clone(),
            ..PlmConfig::base(kind)
        })
        .run(&data)
        .unwrap();
        assert_eq!(outcome.report.model, kind.name());
        assert!(outcome.extra.iter().any(|(k, _)| k == "mlm_final_loss"));
    }
}
