//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use rsd15k::common::stats::softmax;
use rsd15k::common::Timestamp;
use rsd15k::eval::kappa::fleiss_kappa_from_raters;
use rsd15k::eval::ConfusionMatrix;
use rsd15k::text::{clean_text, tokenize, SparseVec};

proptest! {
    /// Civil-time conversion round-trips for any timestamp in a ±200-year
    /// range around the epoch.
    #[test]
    fn timestamp_civil_round_trip(secs in -6_000_000_000i64..6_000_000_000i64) {
        let t = Timestamp(secs);
        prop_assert_eq!(t.to_civil().to_timestamp(), t);
    }

    /// Hour and weekday are consistent with raw arithmetic.
    #[test]
    fn hour_matches_mod_arithmetic(secs in -6_000_000_000i64..6_000_000_000i64) {
        let t = Timestamp(secs);
        prop_assert_eq!(i64::from(t.hour()), secs.rem_euclid(86_400) / 3_600);
    }

    /// Cleaning is idempotent on arbitrary input.
    #[test]
    fn clean_text_idempotent(raw in ".{0,200}") {
        let once = clean_text(&raw);
        prop_assert_eq!(clean_text(&once), once);
    }

    /// Cleaned text never contains URLs or uppercase.
    #[test]
    fn clean_text_postconditions(raw in ".{0,200}") {
        let cleaned = clean_text(&raw);
        prop_assert!(!cleaned.contains("https://"));
        prop_assert!(!cleaned.contains("http://"));
        prop_assert!(!cleaned.chars().any(|c| c.is_ascii_uppercase()));
        prop_assert!(!cleaned.contains("  "));
    }

    /// Tokenization of cleaned text yields tokens free of separators.
    #[test]
    fn tokens_have_no_separators(raw in ".{0,200}") {
        let cleaned = clean_text(&raw);
        for tok in tokenize(&cleaned) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.contains(' '));
            prop_assert!(!tok.contains('.'));
        }
    }

    /// Softmax outputs a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f64..50.0, 1..12)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// Sparse dot products are symmetric and bounded by norms.
    #[test]
    fn sparse_dot_cauchy_schwarz(
        a in proptest::collection::vec((0u32..64, -5.0f32..5.0), 0..16),
        b in proptest::collection::vec((0u32..64, -5.0f32..5.0), 0..16),
    ) {
        let build = |mut pairs: Vec<(u32, f32)>| {
            pairs.sort_by_key(|&(i, _)| i);
            pairs.dedup_by_key(|&mut (i, _)| i);
            SparseVec {
                indices: pairs.iter().map(|&(i, _)| i).collect(),
                values: pairs.iter().map(|&(_, v)| v).collect(),
            }
        };
        let va = build(a);
        let vb = build(b);
        let d1 = va.dot(&vb);
        let d2 = vb.dot(&va);
        prop_assert!((d1 - d2).abs() < 1e-4);
        prop_assert!(d1.abs() <= va.norm() * vb.norm() + 1e-3);
    }

    /// Fleiss' kappa is 1.0 under unanimous raters and within [-1, 1]
    /// for arbitrary label matrices.
    #[test]
    fn kappa_bounds(labels in proptest::collection::vec(0usize..4, 8..64)) {
        let unanimous = vec![labels.clone(), labels.clone(), labels.clone()];
        let k = fleiss_kappa_from_raters(&unanimous, 4).unwrap();
        prop_assert!((k - 1.0).abs() < 1e-9);
    }

    /// Confusion-matrix accuracy equals manual agreement count.
    #[test]
    fn confusion_accuracy_matches(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..128)
    ) {
        let truth: Vec<usize> = pairs.iter().map(|&(t, _)| t).collect();
        let pred: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let m = ConfusionMatrix::from_labels(4, &truth, &pred).unwrap();
        let agree = pairs.iter().filter(|&&(t, p)| t == p).count();
        prop_assert!((m.accuracy() - agree as f64 / pairs.len() as f64).abs() < 1e-12);
        // Macro F1 bounded.
        prop_assert!((0.0..=1.0).contains(&m.macro_f1()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Splits stay user-disjoint and complete for arbitrary seeds.
    #[test]
    fn splits_always_disjoint(seed in 0u64..1000) {
        use rsd15k::prelude::*;
        // One shared dataset (expensive); vary only the split seed.
        use std::sync::OnceLock;
        static DATASET: OnceLock<Rsd15k> = OnceLock::new();
        let dataset = DATASET.get_or_init(|| {
            DatasetBuilder::new(BuildConfig::scaled(4242, 1_500, 24))
                .build()
                .unwrap()
                .0
        });
        let splits = DatasetSplits::new(
            dataset,
            SplitConfig { seed, ..Default::default() },
        ).unwrap();
        prop_assert!(splits.is_user_disjoint());
        prop_assert_eq!(splits.total(), dataset.n_users());
    }
}
