//! Registry determinism under contention: hammering one [`Registry`]
//! from the `rsd-par` pool must produce a snapshot that is bit-for-bit
//! identical to the same workload applied serially. This holds because
//! every aggregate is either integer-typed (counters, span/tree
//! nanoseconds), order-independent in f64 (histogram sums of small
//! integers are exact), or deterministic last-write (gauges set to a
//! constant).

use std::time::Duration;

use rsd_obs::Registry;

const ITEMS: usize = 10_000;
const GRAIN: usize = 64;

/// The per-item workload: one counter bump, one histogram observation,
/// one flat span, one tree span. Everything derived from `i` alone so
/// execution order cannot matter.
fn drive(reg: &Registry, i: usize) {
    reg.counter_add("conc.items", 1);
    reg.observe("conc.sizes", (i % 7 + 1) as f64);
    reg.record_span(
        "conc.step",
        Duration::from_nanos(((i % 5 + 1) * 100_000) as u64),
        (i % 3) as u32,
    );
    reg.record_tree(
        "conc.outer;conc.step",
        ((i % 5 + 1) * 100_000) as u64,
        ((i % 5 + 1) * 60_000) as u64,
        (i % 11) as u64 * 64,
        (i % 11) as u64 * 32,
    );
    reg.gauge_set("conc.last", 42.0);
}

fn snapshot_of(run: impl FnOnce(&Registry)) -> String {
    let reg = Registry::new();
    run(&reg);
    reg.snapshot().to_json()
}

#[test]
fn parallel_and_serial_snapshots_are_bit_identical() {
    let serial = snapshot_of(|reg| {
        rsd_par::run_serial(|| {
            for i in 0..ITEMS {
                drive(reg, i);
            }
        });
    });
    let parallel = snapshot_of(|reg| {
        rsd_par::with_local_pool(4, || {
            rsd_par::parallel_for(ITEMS, GRAIN, |range| {
                for i in range {
                    drive(reg, i);
                }
            });
        });
    });
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "registry snapshot diverged between serial and 4-thread runs"
    );

    // Spot-check the aggregates themselves, not just the JSON encoding.
    let reg = Registry::new();
    rsd_par::with_local_pool(4, || {
        rsd_par::parallel_for(ITEMS, GRAIN, |range| {
            for i in range {
                drive(&reg, i);
            }
        });
    });
    assert_eq!(reg.counter("conc.items"), ITEMS as u64);
    assert_eq!(reg.gauge("conc.last"), Some(42.0));
    let tree = reg.tree_stat("conc.outer;conc.step").unwrap();
    assert_eq!(tree.count, ITEMS as u64);
    assert!(tree.self_ns <= tree.total_ns);
}
