//! Integration: agreement statistics and statistical machinery over a real
//! campaign's output — kappa vs alpha consistency, bootstrap and McNemar
//! behaviour on model predictions.

use rsd15k::eval::{bootstrap_metrics, mcnemar};
use rsd15k::prelude::*;

fn campaign_report(seed: u64) -> rsd15k::annotation::CampaignReport {
    let corpus = CorpusGenerator::new(CorpusConfig::small(seed, 1_200))
        .unwrap()
        .generate();
    let items: Vec<(PostId, RiskLevel)> = corpus
        .posts
        .iter()
        .filter(|p| !p.off_topic && p.duplicate_of.is_none())
        .map(|p| (p.id, p.latent_risk))
        .collect();
    let mut campaign = Campaign::new(CampaignConfig::paper(seed)).unwrap();
    campaign.run(&items).unwrap().1
}

#[test]
fn kappa_and_alpha_agree_on_campaign_output() {
    let report = campaign_report(5001);
    assert!((0.55..=0.85).contains(&report.fleiss_kappa));
    // Alpha covers partially-rated items too; it should land in the same
    // neighbourhood as kappa, not a different regime.
    assert!(
        (report.krippendorff_alpha - report.fleiss_kappa).abs() < 0.15,
        "alpha {} vs kappa {}",
        report.krippendorff_alpha,
        report.fleiss_kappa
    );
}

#[test]
fn bootstrap_interval_covers_across_seeds() {
    // The interval from one seed's sample should usually contain the
    // point estimate from another seed's sample of the same process.
    let truth: Vec<usize> = (0..150).map(|i| i % 4).collect();
    let noisy = |seed: u64| -> Vec<usize> {
        use rand::Rng;
        use rsd15k::common::rng::stream_rng;
        let mut rng = stream_rng(seed, "test.noise");
        truth
            .iter()
            .map(|&t| {
                if rng.gen::<f64>() < 0.2 {
                    (t + 1) % 4
                } else {
                    t
                }
            })
            .collect()
    };
    let (acc_a, _) = bootstrap_metrics(4, &truth, &noisy(1), 300, 0.95, 1).unwrap();
    let (acc_b, _) = bootstrap_metrics(4, &truth, &noisy(2), 300, 0.95, 2).unwrap();
    assert!(
        acc_a.contains(acc_b.estimate) || acc_b.contains(acc_a.estimate),
        "intervals should overlap for identical processes: {acc_a:?} vs {acc_b:?}"
    );
}

#[test]
fn mcnemar_detects_real_model_gaps() {
    // Simulate a strictly better model: B fixes a third of A's errors.
    use rand::Rng;
    use rsd15k::common::rng::stream_rng;
    let truth: Vec<usize> = (0..400).map(|i| i % 4).collect();
    let mut rng = stream_rng(9, "test.mcnemar");
    let pred_a: Vec<usize> = truth
        .iter()
        .map(|&t| {
            if rng.gen::<f64>() < 0.4 {
                (t + 1) % 4
            } else {
                t
            }
        })
        .collect();
    let pred_b: Vec<usize> = truth
        .iter()
        .zip(&pred_a)
        .map(|(&t, &a)| {
            if a != t && rng.gen::<f64>() < 0.5 {
                t
            } else {
                a
            }
        })
        .collect();
    let out = mcnemar(&truth, &pred_a, &pred_b).unwrap();
    assert!(out.b_only > out.a_only);
    assert!(out.significant(0.01), "p = {}", out.p_value);
}
