//! Integration: the simulated Reddit collection pathway behaves like the
//! real API contract the paper's crawler depended on.

use rsd15k::corpus::reddit::{CrawlClient, MAX_PAGE_SIZE};
use rsd15k::prelude::*;

fn store(seed: u64, users: usize) -> rsd15k::corpus::reddit::RedditStore {
    CorpusGenerator::new(CorpusConfig::small(seed, users))
        .unwrap()
        .generate()
        .into_store()
}

#[test]
fn crawl_equals_direct_enumeration() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(6001, 1_500))
        .unwrap()
        .generate();
    let mut expected: Vec<_> = corpus.posts.clone();
    expected.sort_by_key(|p| (p.created, p.id));
    let store = corpus.into_store();
    let mut client = CrawlClient::new(&store);
    let crawled = client
        .crawl_window(
            "SuicideWatch",
            Timestamp::from_ymd(2020, 1, 1).unwrap(),
            Timestamp::from_ymd(2022, 1, 1).unwrap(),
        )
        .unwrap();
    assert_eq!(crawled.len(), expected.len());
    assert_eq!(
        crawled, expected,
        "crawl must see every post exactly once, in order"
    );
}

#[test]
fn partial_windows_are_prefix_consistent() {
    let store = store(6002, 1_000);
    let start = Timestamp::from_ymd(2020, 1, 1).unwrap();
    let mid = Timestamp::from_ymd(2021, 1, 1).unwrap();
    let end = Timestamp::from_ymd(2022, 1, 1).unwrap();
    let mut c1 = CrawlClient::new(&store);
    let first_half = c1.crawl_window("SuicideWatch", start, mid).unwrap();
    let mut c2 = CrawlClient::new(&store);
    let full = c2.crawl_window("SuicideWatch", start, end).unwrap();
    assert!(first_half.len() < full.len());
    assert_eq!(&full[..first_half.len()], &first_half[..]);
}

#[test]
fn request_budget_matches_pagination_math() {
    let store = store(6003, 2_000);
    let mut client = CrawlClient::new(&store);
    let posts = client
        .crawl_window(
            "SuicideWatch",
            Timestamp::from_ymd(2020, 1, 1).unwrap(),
            Timestamp::from_ymd(2022, 1, 1).unwrap(),
        )
        .unwrap();
    let stats = client.stats();
    let expected_pages = posts.len().div_ceil(MAX_PAGE_SIZE) as u64;
    assert!(
        stats.requests >= expected_pages && stats.requests <= expected_pages + 1,
        "requests {} vs expected pages {expected_pages}",
        stats.requests
    );
    // 60 req/min budget → simulated seconds = requests.
    assert_eq!(stats.simulated_secs, stats.requests);
}
