//! The streaming pipeline's golden contract: byte-identical output to the
//! monolithic batch path, under any shard geometry, thread count, or
//! kill/resume schedule.

use std::path::PathBuf;

use rsd_dataset::io::to_jsonl;
use rsd_dataset::{BuildConfig, DatasetBuilder, StreamingBuild, StreamingOptions};
use rsd_pipeline::PipelineConfig;

fn small_cfg(seed: u64) -> BuildConfig {
    // Matches `Scale::Small` in rsd-bench.
    BuildConfig::scaled(seed, 2_500, 48)
}

fn opts(shard_users: usize, shards_in_flight: usize) -> StreamingOptions {
    StreamingOptions {
        pipeline: PipelineConfig {
            shard_users,
            shards_in_flight,
            interrupt_after_shards: None,
        },
        checkpoint_dir: None,
        interrupt_after_stage: None,
    }
}

fn jsonl(dataset: &rsd_dataset::Rsd15k) -> Vec<u8> {
    let mut buf = Vec::new();
    to_jsonl(dataset, &mut buf).unwrap();
    buf
}

fn batch(cfg: &BuildConfig) -> (Vec<u8>, Vec<String>, String) {
    let (dataset, pool, report) = DatasetBuilder::new(cfg.clone())
        .build_batch_with_pool()
        .unwrap();
    let report = serde_json::to_string(&report).unwrap();
    (jsonl(&dataset), pool, report)
}

fn stream(cfg: &BuildConfig, opts: &StreamingOptions) -> (Vec<u8>, Vec<String>, String) {
    let out = DatasetBuilder::new(cfg.clone())
        .build_streaming(opts)
        .unwrap();
    let report = serde_json::to_string(&out.report).unwrap();
    (jsonl(&out.dataset), out.unlabeled, report)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsd_stream_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn streaming_is_bit_identical_to_batch_at_small_scale() {
    let cfg = small_cfg(2026);
    let golden = batch(&cfg);
    // Shard sizes that divide the corpus unevenly, and a single-shard
    // geometry that degenerates to the batch shape.
    for (shard_users, in_flight) in [(700, 2), (2_500, 1), (512, 4)] {
        let got = stream(&cfg, &opts(shard_users, in_flight));
        assert_eq!(
            golden.0, got.0,
            "dataset JSONL diverged (shard_users={shard_users}, in_flight={in_flight})"
        );
        assert_eq!(golden.1, got.1, "unlabeled pool diverged");
        assert_eq!(golden.2, got.2, "build report diverged");
    }
}

#[test]
fn streaming_equivalence_holds_single_threaded() {
    let cfg = small_cfg(7);
    let (golden, got) = rsd_par::run_serial(|| (batch(&cfg), stream(&cfg, &opts(600, 3))));
    assert_eq!(golden, got);
}

/// Mid-scale golden run — minutes of debug-build wall-clock, so gated
/// behind `--ignored` and run by CI in release mode.
#[test]
#[ignore]
fn streaming_is_bit_identical_to_batch_at_mid_scale() {
    let cfg = BuildConfig::scaled(2026, 24_000, 400);
    let golden = batch(&cfg);
    let (shard_users, in_flight) = (4_096, 4);
    let out = DatasetBuilder::new(cfg)
        .build_streaming(&opts(shard_users, in_flight))
        .unwrap();
    assert_eq!(golden.0, jsonl(&out.dataset));
    assert_eq!(golden.1, out.unlabeled);
    assert_eq!(golden.2, serde_json::to_string(&out.report).unwrap());
    // The bounded-memory claim at mid scale: one wave of shards, not the
    // full raw pool.
    let peak = out.pipeline.peak_resident_posts;
    let bound = (shard_users * in_flight * 120) as u64;
    assert!(peak <= bound, "peak {peak} exceeds wave bound {bound}");
    assert!(peak < out.report.raw_posts as u64);
}

#[test]
fn killed_build_resumes_from_checkpoints() {
    let cfg = small_cfg(33);
    let dir = fresh_dir("resume");
    let golden = stream(&cfg, &opts(600, 2));

    // First run dies after two shards; its completed boundaries persist.
    let mut killed = opts(600, 2);
    killed.checkpoint_dir = Some(dir.clone());
    killed.pipeline.interrupt_after_shards = Some(2);
    let err = DatasetBuilder::new(cfg.clone())
        .build_streaming(&killed)
        .unwrap_err();
    assert!(err.to_string().contains("interrupted"), "{err}");

    // The resumed run replays those shards from disk and must reproduce
    // the uninterrupted dataset exactly.
    let mut resume = opts(600, 2);
    resume.checkpoint_dir = Some(dir.clone());
    let out: StreamingBuild = DatasetBuilder::new(cfg.clone())
        .build_streaming(&resume)
        .unwrap();
    assert!(
        out.pipeline.checkpoint_hits >= 2,
        "resume replayed {} checkpoints",
        out.pipeline.checkpoint_hits
    );
    assert_eq!(golden.0, jsonl(&out.dataset));
    assert_eq!(golden.1, out.unlabeled);
    assert_eq!(golden.2, serde_json::to_string(&out.report).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_after_global_stage_resumes_identically() {
    let cfg = small_cfg(41);
    let dir = fresh_dir("resume_global");
    let golden = stream(&cfg, &opts(600, 2));

    let mut killed = opts(600, 2);
    killed.checkpoint_dir = Some(dir.clone());
    killed.interrupt_after_stage = Some("pipeline.select".to_string());
    let err = DatasetBuilder::new(cfg.clone())
        .build_streaming(&killed)
        .unwrap_err();
    assert!(err.to_string().contains("pipeline.select"), "{err}");

    let mut resume = opts(600, 2);
    resume.checkpoint_dir = Some(dir.clone());
    let out = DatasetBuilder::new(cfg.clone())
        .build_streaming(&resume)
        .unwrap();
    // Every shard plus the selection stage replays from disk.
    assert!(out.pipeline.checkpoint_hits > out.pipeline.shards as u64);
    assert_eq!(golden.0, jsonl(&out.dataset));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resident_posts_stay_bounded_by_the_wave() {
    let cfg = BuildConfig::scaled(9, 8_000, 60);
    let (shard_users, in_flight) = (1_024, 2);
    let out = DatasetBuilder::new(cfg)
        .build_streaming(&opts(shard_users, in_flight))
        .unwrap();
    let peak = out.pipeline.peak_resident_posts;
    assert!(peak > 0, "gauge never engaged");
    // The corpus model tops out well under 120 posts/user, so one wave of
    // shards bounds residency at shard_users * in_flight * 120 — far
    // below the full raw pool the batch path materializes.
    let bound = (shard_users * in_flight * 120) as u64;
    assert!(peak <= bound, "peak {peak} exceeds wave bound {bound}");
    assert!(
        peak < out.report.raw_posts as u64,
        "peak {peak} not below raw pool {}",
        out.report.raw_posts
    );
}
