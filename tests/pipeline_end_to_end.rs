//! Integration: the full paper pipeline at test scale — generation,
//! simulated crawl, preprocessing, selection, annotation, assembly,
//! splits, privacy audit, serialization round-trip.

use rsd15k::dataset::{io, privacy};
use rsd15k::prelude::*;

fn build() -> (Rsd15k, rsd15k::dataset::BuildReport) {
    DatasetBuilder::new(BuildConfig::scaled(7001, 3_000, 50))
        .build()
        .expect("build")
}

#[test]
fn full_pipeline_produces_consistent_dataset() {
    let (dataset, report) = build();
    dataset.validate().expect("structural invariants");
    assert_eq!(dataset.n_users(), 50);
    assert!(report.raw_posts > dataset.n_posts());
    assert!(report.crawl.requests > 0, "data must flow through the API");
    // Class ordering from Table I must survive the whole pipeline.
    let counts = dataset.class_counts();
    assert!(counts[RiskLevel::Ideation.index()] > counts[RiskLevel::Indicator.index()]);
    assert!(counts[RiskLevel::Indicator.index()] > counts[RiskLevel::Behavior.index()]);
    assert!(counts[RiskLevel::Behavior.index()] > counts[RiskLevel::Attempt.index()]);
}

#[test]
fn splits_are_user_disjoint_and_windowed() {
    let (dataset, _) = build();
    let splits = DatasetSplits::new(&dataset, SplitConfig::default()).expect("split");
    assert!(splits.is_user_disjoint());
    assert_eq!(splits.total(), dataset.n_users());
    for w in splits.train.iter().chain(&splits.valid).chain(&splits.test) {
        assert!(!w.post_indices.is_empty() && w.post_indices.len() <= 5);
        assert_eq!(
            w.label,
            dataset.posts[*w.post_indices.last().unwrap()].label
        );
    }
}

#[test]
fn privacy_audit_passes_on_release_artifact() {
    let (dataset, _) = build();
    let audit = privacy::audit(&dataset);
    assert!(audit.passed(), "findings: {:?}", audit.findings);
}

#[test]
fn jsonl_round_trip_preserves_everything() {
    let (dataset, _) = build();
    let mut buf = Vec::new();
    io::to_jsonl(&dataset, &mut buf).expect("serialize");
    let back = io::from_jsonl(&buf[..]).expect("deserialize");
    assert_eq!(dataset, back);
}

#[test]
fn annotation_quality_gates_hold() {
    let (_, report) = build();
    let c = &report.campaign;
    assert!(c.kappa_items > 0);
    assert!(
        (0.55..=0.90).contains(&c.fleiss_kappa),
        "kappa {}",
        c.fleiss_kappa
    );
    assert!(
        c.label_accuracy > 0.80,
        "label accuracy {}",
        c.label_accuracy
    );
    let passed = c.days.iter().filter(|d| d.passed).count();
    assert!(passed * 10 >= c.days.len() * 8, "most inspection days pass");
    for q in &c.qualification {
        assert!(*q.round_accuracies.last().unwrap() >= 0.95);
    }
}
