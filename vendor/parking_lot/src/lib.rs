//! Offline clean-room stub of the `parking_lot` locking API this
//! workspace uses, implemented over `std::sync`. The semantic difference
//! parking_lot callers rely on — `lock()` returning the guard directly
//! instead of a poison `Result` — is preserved by recovering from
//! poisoning (parking_lot has no lock poisoning at all).

use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
