//! Offline clean-room stub of the `proptest` API surface this workspace
//! uses: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, numeric-range and regex-literal strategies, tuple strategies,
//! and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and the generated inputs' seed, which — together with
//! deterministic per-test seeding — is enough to reproduce.

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Value generators. `&self` so range expressions (non-`Copy` iterator
/// types) can be re-sampled every case.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Character pool for `.`-pattern strings: ASCII letters (both cases),
/// digits, whitespace/punctuation that exercises the text pipeline, and
/// a few multibyte chars so UTF-8 boundaries get coverage.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'Z', '0', '1', '2', '9', ' ', ' ',
    ' ', '.', ',', '!', '?', ':', '/', '\'', '"', '-', '_', '(', ')', '#', '@', 'é', 'ü', '中',
    '😀', '\t',
];

/// String strategy from a regex literal. Supported pattern: `.{m,n}`
/// (any-char strings with length in `[m, n]`); anything else falls back
/// to length `0..=64` over the same pool.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())])
            .collect()
    }
}

/// Parse `.{m,n}` into `(m, n)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// `vec(element, len_range)` — proptest's vector strategy.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            lo: len.start,
            hi_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.lo..self.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a, used to derive a deterministic per-property seed from the
/// test name.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{collection, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Define property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs [$cfg] $($rest)*);
    };
    (@funcs [$cfg:expr]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                use $crate::__SeedableRng as _;
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::__seed_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::__StdRng::seed_from_u64(
                        __seed ^ u64::from(__case),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: Result<(), String> = (|| { $body Ok(()) })();
                    if let Err(__msg) = __result {
                        panic!(
                            "property {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), __case, __cfg.cases, __seed, __msg,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Assert inside a [`proptest!`] body; failures report the generated
/// case instead of unwinding bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        fn strings_obey_length(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }

        fn vecs_obey_length(v in collection::vec((0u32..4, 0.0f32..1.0), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((0.0..1.0).contains(b));
            }
        }
    }

    #[test]
    fn dot_repeat_parses() {
        assert_eq!(super::parse_dot_repeat(".{0,200}"), Some((0, 200)));
        assert_eq!(super::parse_dot_repeat("[a-z]+"), None);
    }
}
