//! The JSON-like value model the stub serde traits serialize into.

use std::fmt;

/// An insertion-ordered string-keyed map (what `serde_json::Map` is here).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value if it was present. Preserves
    /// the insertion order of the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integral numbers (covers every integer type in the workspace).
    Int(i128),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i128)
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; force a
                // fractional marker so floats re-parse as floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // Match serde_json's lossy behaviour for non-finite floats.
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl Value {
    /// Compact JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Pretty (2-space indented) JSON encoding.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}
