//! Offline clean-room stub of the `serde` API surface this workspace uses.
//!
//! The real serde's visitor-based data model is replaced by a simpler
//! value model: [`Serialize`] lowers a type into a [`Value`] tree and
//! [`Deserialize`] lifts it back out. This is sufficient because the only
//! data format consumed in this workspace is the sibling `serde_json`
//! stub, which (de)serializes exactly this [`Value`] tree.

mod value;

pub use value::{Map, Value};

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error raised when lifting a [`Value`] back into a typed structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value-tree representation.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Lift a value tree back into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {} out of range for {}",
                            i,
                            stringify!($t)
                        ))
                    }),
                    // Tolerate floats that are exactly integral (JSON has
                    // one number type).
                    Value::Float(f) if f.fract() == 0.0 => {
                        Ok(*f as i128 as $t)
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, found {other}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(format!(
                        "expected number, found {value}"
                    )))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {value}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {value}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {value}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, found {got}")))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output: HashMap iteration order is nondeterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {value}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {value}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {value}"))
                })?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of {want}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
