//! Offline clean-room stub of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input `TokenStream` is walked directly, and the generated impls are
//! assembled as source strings and re-parsed. Supports the shapes this
//! workspace actually derives on:
//!
//! - structs with named fields  → JSON objects
//! - tuple structs with one field (newtypes) → transparent inner value
//! - enums with unit variants   → `"Variant"` strings
//! - enums with struct variants → `{"Variant": {…fields…}}`
//! - enums with one-field tuple variants → `{"Variant": value}`
//!
//! `#[serde(...)]` attributes are accepted and ignored — the only one in
//! use, `transparent`, matches the default newtype behaviour here.
//! Generic types are not supported (none are derived in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, …);` — number of unnamed fields.
    TupleStruct(usize),
    /// `enum E { … }` — one entry per variant.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Number of unnamed fields.
    Tuple(usize),
    /// Named field list.
    Struct(Vec<String>),
}

/// JSON key for a field identifier: raw identifiers (`r#type`) serialize
/// without the `r#` prefix, matching real serde.
fn json_key(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

/// Walk past attributes (`#[...]`) and visibility (`pub`, `pub(...)`),
/// returning the index of the next significant token.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the `[...]` group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a field-list token sequence on top-level commas, tracking `<>`
/// depth so generic arguments (`BTreeMap<String, u32>`) don't split.
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    let mut fields = 0;
    let mut angle = 0i32;
    let mut any = false;
    for t in tokens {
        any = true;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma doesn't add a field; no trailing comma adds one.
    if any {
        let trailing = matches!(
            tokens.last(),
            Some(TokenTree::Punct(p)) if p.as_char() == ','
        );
        if !trailing {
            fields += 1;
        }
    }
    fields
}

/// Parse `{ a: T, b: U, … }` contents into the field-name list.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        names.push(name.to_string());
        // Skip to the next top-level comma (past `: Type`).
        let mut angle = 0i32;
        i += 1;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Parse `enum` body contents into the variant list.
fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_top_level_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip any discriminant (`= expr`) up to the next comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parse the deriving item into its name and [`Shape`].
fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    // Find the `struct` / `enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive stub: no struct/enum found"),
        }
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported ({name})");
    }
    // Body: brace group (named struct / enum), paren group (tuple struct),
    // or `;` (unit struct — not used here).
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Shape::Enum(parse_variants(&inner))
            } else {
                Shape::NamedStruct(parse_named_fields(&inner))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct(count_top_level_fields(&inner))
        }
        other => panic!("serde_derive stub: unsupported item body {other:?}"),
    };
    (name, shape)
}

/// `#[derive(Serialize)]` — emits a `serde::Serialize` (to_value) impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __map = serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(\"{key}\", serde::Serialize::to_value(&self.{f}));\n",
                    key = json_key(f),
                ));
            }
            s.push_str("serde::Value::Object(__map)");
            s
        }
        Shape::TupleStruct(1) => {
            // Newtypes are transparent, matching serde's newtype handling.
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serde::Value::Array(vec![{items}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name,
                    )),
                    VariantKind::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("serde::Value::Array(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __outer = serde::Map::new();\n\
                             __outer.insert(\"{v}\", {payload});\n\
                             serde::Value::Object(__outer)\n\
                             }}\n",
                            v = v.name,
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "__inner.insert(\"{key}\", serde::Serialize::to_value({f}));\n",
                                key = json_key(f),
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __inner = serde::Map::new();\n\
                             {inserts}\
                             let mut __outer = serde::Map::new();\n\
                             __outer.insert(\"{v}\", serde::Value::Object(__inner));\n\
                             serde::Value::Object(__outer)\n\
                             }}\n",
                            v = v.name,
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` — emits a `serde::Deserialize` (from_value)
/// impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 serde::Error::custom(\"{name}: expected object\"))?;\n\
                 let _ = __obj;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::Deserialize::from_value(\
                     __obj.get(\"{key}\").unwrap_or(&serde::Value::Null))?,\n",
                    key = json_key(f),
                ));
            }
            s.push_str("})");
            s
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let mut s = format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return Err(serde::Error::custom(\"{name}: wrong arity\"));\n\
                 }}\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!("serde::Deserialize::from_value(&__arr[{i}])?,\n"));
            }
            s.push_str("))");
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name,)),
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "return Ok({name}::{v}(\
                                 serde::Deserialize::from_value(__payload)?));",
                                v = v.name,
                            )
                        } else {
                            let mut s = format!(
                                "let __arr = __payload.as_array().ok_or_else(|| \
                                 serde::Error::custom(\"{name}::{v}: expected array\"))?;\n\
                                 return Ok({name}::{v}(\n",
                                v = v.name,
                            );
                            for i in 0..*n {
                                s.push_str(&format!(
                                    "serde::Deserialize::from_value(&__arr[{i}])?,\n"
                                ));
                            }
                            s.push_str("));");
                            s
                        };
                        keyed_arms.push_str(&format!("\"{v}\" => {{ {build} }}\n", v = v.name,));
                    }
                    VariantKind::Struct(fields) => {
                        let mut s = format!(
                            "let __inner = __payload.as_object().ok_or_else(|| \
                             serde::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                             let _ = __inner;\n\
                             return Ok({name}::{v} {{\n",
                            v = v.name,
                        );
                        for f in fields {
                            s.push_str(&format!(
                                "{f}: serde::Deserialize::from_value(\
                                 __inner.get(\"{key}\").unwrap_or(&serde::Value::Null))?,\n",
                                key = json_key(f),
                            ));
                        }
                        s.push_str("});");
                        keyed_arms.push_str(&format!("\"{v}\" => {{ {s} }}\n", v = v.name,));
                    }
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 _ => return Err(serde::Error::custom(\
                 format!(\"{name}: unknown variant {{__s}}\"))),\n\
                 }}\n\
                 }}\n\
                 if let Some(__obj) = __value.as_object() {{\n\
                 if let Some((__k, __payload)) = __obj.iter().next() {{\n\
                 match __k.as_str() {{\n{keyed_arms}\
                 _ => return Err(serde::Error::custom(\
                 format!(\"{name}: unknown variant {{__k}}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 Err(serde::Error::custom(\"{name}: expected variant\"))"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__value: &serde::Value) -> Result<Self, serde::Error> {{\n\
         {body}\n}}\n\
         }}\n"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
