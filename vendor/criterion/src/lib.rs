//! Offline clean-room stub of the `criterion` API surface this
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally minimal: each benchmark runs
//! `sample_size` timed iterations and reports the mean and best
//! wall-clock per iteration on stdout. Under `cargo test` (when the
//! harness passes `--test`) each benchmark runs exactly once as a smoke
//! check, mirroring real criterion's test-mode behaviour.

use std::time::{Duration, Instant};

/// Hint the optimizer to keep a value (and its computation) alive.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine
/// call per setup call regardless of size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`];
/// collects per-iteration timings.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness=false bench binaries with `--test`:
        // run every benchmark once so benches stay compile- and
        // run-checked without dominating the test wall-clock.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let iterations = if self.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher {
            iterations,
            samples: Vec::with_capacity(iterations as usize),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else if !b.samples.is_empty() {
            let total: Duration = b.samples.iter().sum();
            let mean = total / b.samples.len() as u32;
            let best = b.samples.iter().min().copied().unwrap_or_default();
            println!(
                "{id:<48} mean {mean:>12?}   best {best:>12?}   ({} iters)",
                b.samples.len()
            );
        }
        self
    }

    /// Compatibility no-op (real criterion parses CLI flags here).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Compatibility no-op invoked by [`criterion_main!`].
    pub fn final_summary(&self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut runs = 0u32;
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        c.bench_function("stub/counts", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_pairs_setup_and_routine() {
        let mut c = Criterion {
            sample_size: 4,
            test_mode: false,
        };
        let mut seen = Vec::new();
        c.bench_function("stub/batched", |b| {
            let mut next = 0u32;
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
