//! Offline clean-room stub of the `serde_json` API surface this
//! workspace uses: `to_string`/`to_string_pretty`/`to_writer`,
//! `from_str`/`from_reader`, [`Value`], [`Map`], and a [`json!`] macro.
//!
//! Serialization goes through the sibling `serde` stub's value model
//! ([`serde::Serialize::to_value`]), so this crate is just a JSON
//! encoder/decoder for that [`Value`] tree.

pub use serde::{Map, Value};

use std::fmt;
use std::io;

/// Error raised while encoding/decoding JSON.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Serialize compact JSON into an [`io::Write`].
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(value.to_value().to_json().as_bytes())?;
    Ok(())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Lift a [`Value`] tree into a typed structure.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a typed structure.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Read an entire [`io::Read`] and parse it as JSON.
pub fn from_reader<R: io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parse a JSON document into a [`Value`], requiring the whole input to
/// be consumed (modulo trailing whitespace).
fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid surrogate pair"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

/// Build a [`Value`] inline. Supports `null`, array literals, object
/// literals with literal keys and expression values, and bare
/// serializable expressions. Nest objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__private::Serialize::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert($key, $crate::__private::Serialize::to_value(&$value)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => {
        $crate::__private::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let src = r#"{"a": [1, -2.5, true, null, "x\ny"], "b": {"nested": "v"}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1u32);
        assert_eq!(v["a"][1], -2.5f64);
        assert_eq!(v["a"][2], true);
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"][4], "x\ny");
        assert_eq!(v["b"]["nested"], "v");
        // Encode → parse → identical tree.
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "post": format!("p{}", 1), "n": 3u32 });
        assert_eq!(v["post"], "p1");
        assert_eq!(v["n"], 3u32);
        assert!(json!(null).is_null());
        assert_eq!(json!([1u8, 2u8])[1], 2u8);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]2").is_err());
        assert!(from_str::<Value>("nulp").is_err());
    }
}
