//! Offline clean-room stub of the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`) and [`SeedableRng::seed_from_u64`].
//!
//! The build container has no crates.io access, so the real `rand` crate
//! cannot be resolved; this stub keeps the workspace self-contained. The
//! generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! repo only relies on determinism-given-seed and statistical quality,
//! both of which hold.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly. The blanket
/// [`SampleRange`] impls below delegate here; keeping a single blanket
/// impl per range shape (like upstream rand) is what lets integer-literal
/// ranges infer their type from the surrounding expression.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Unbiased-enough integer draw from `[0, span)` via 128-bit widening
/// multiply (bias < 2^-64, irrelevant at the workspace's sample sizes).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u128::from(u64::MAX) {
                        // Full-width range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly (`[0, 1)` for floats,
    /// full width for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (the only constructor this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF_CAFE_F00D, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
