//! The Table IV scenario as a runnable example: small data + Large model +
//! full optimization vs large data + Base model + defaults.
//!
//! Run: `cargo run --release --example scale_study`

use rsd15k::models::pretrain::PretrainConfig;
use rsd15k::models::scale::run_scale_study;
use rsd15k::prelude::*;

fn main() -> Result<()> {
    let seed = 17;
    let (dataset, unlabeled, _) =
        DatasetBuilder::new(BuildConfig::scaled(seed, 6_000, 120)).build_with_pool()?;

    // Scaled-down configs that keep the Large-vs-Base contrast.
    let large = PlmConfig {
        pretrain_texts: 400,
        pretrain: PretrainConfig {
            epochs: 1,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: 6,
            balanced: true,
            ..Default::default()
        },
        ..PlmConfig::large(PlmKind::Deberta)
    };
    let base = PlmConfig {
        pretrain_texts: 400,
        pretrain: PretrainConfig {
            epochs: 1,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: 4,
            ..Default::default()
        },
        ..PlmConfig::base(PlmKind::Deberta)
    };

    let rows = run_scale_study(&dataset, &unlabeled, 40, large, base, seed)?;
    println!(
        "Table IV scenario (scaled): DeBERTa Large+opt on 40 users vs Base+defaults on {} users\n",
        dataset.n_users()
    );
    println!(
        "{:<6} {:<6} {:<5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9}",
        "Data", "Model", "Opt", "IN", "ID", "BR", "AT", "M-F1", "Acc", "params"
    );
    for r in rows {
        println!(
            "{:<6} {:<6} {:<5} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>5.0}% {:>9}",
            r.data,
            r.model,
            if r.optimized { "Full" } else { "No" },
            r.class_f1[0],
            r.class_f1[1],
            r.class_f1[2],
            r.class_f1[3],
            r.macro_f1,
            r.accuracy * 100.0,
            r.params
        );
    }
    println!(
        "\nPaper Table IV: 500/Large/Full -> 0.74 M-F1, 74% acc; 15K/Base/No -> 0.70 M-F1, 76% acc"
    );
    Ok(())
}
