//! Annotation-pipeline audit: run the paper's full quality-control
//! protocol on a synthetic pool and print the audit trail — qualification
//! rounds, daily quotas and inspections, the uncertainty-policy effect,
//! and Fleiss' kappa with and without the policy (the §II-B2 ablation).
//!
//! Run: `cargo run --release --example annotation_audit`

use rsd15k::annotation::CampaignReport;
use rsd15k::eval::kappa::interpret_kappa;
use rsd15k::prelude::*;

fn run_campaign(items: &[(PostId, RiskLevel)], seed: u64, policy: bool) -> Result<CampaignReport> {
    let mut cfg = CampaignConfig::paper(seed);
    cfg.uncertainty_policy = policy;
    let mut campaign = Campaign::new(cfg)?;
    let (_, report) = campaign.run(items)?;
    Ok(report)
}

fn main() -> Result<()> {
    let seed = 11;
    let corpus = CorpusGenerator::new(CorpusConfig::small(seed, 2_500))?.generate();
    let items: Vec<(PostId, RiskLevel)> = corpus
        .posts
        .iter()
        .filter(|p| !p.off_topic && p.duplicate_of.is_none())
        .map(|p| (p.id, p.latent_risk))
        .collect();
    println!(
        "annotating {} posts with the paper's protocol...\n",
        items.len()
    );

    let with = run_campaign(&items, seed, true)?;
    println!("== with uncertainty-reporting policy ==");
    println!(
        "  qualification rounds: {:?}",
        with.qualification
            .iter()
            .map(|q| q.rounds)
            .collect::<Vec<_>>()
    );
    println!(
        "  Fleiss kappa: {:.4} ({})",
        with.fleiss_kappa,
        interpret_kappa(with.fleiss_kappa)
    );
    println!(
        "  flag rate: {:.2}%  adjudicated: {}",
        with.flag_rate * 100.0,
        with.adjudicated
    );
    println!(
        "  label accuracy vs ground truth: {:.2}%",
        with.label_accuracy * 100.0
    );
    println!(
        "  inspection days passed: {}/{}",
        with.days.iter().filter(|d| d.passed).count(),
        with.days.len()
    );

    let without = run_campaign(&items, seed, false)?;
    println!("\n== without the policy (forced decisions under hesitation) ==");
    println!("  Fleiss kappa: {:.4}", without.fleiss_kappa);
    println!(
        "  label accuracy vs ground truth: {:.2}%",
        without.label_accuracy * 100.0
    );

    println!(
        "\npolicy effect: {:+.2} percentage points of label accuracy, {:+.4} kappa",
        (with.label_accuracy - without.label_accuracy) * 100.0,
        with.fleiss_kappa - without.fleiss_kappa
    );
    Ok(())
}
