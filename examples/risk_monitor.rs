//! Risk monitor: a downstream-application sketch (paper §V suggests
//! "mental health testing, clinical psychiatric auxiliary treatment").
//!
//! Trains the XGBoost baseline, then streams one held-out user's timeline
//! post by post, re-scoring the risk level after each post and flagging
//! escalations — the early-warning pattern a deployment would use.
//!
//! Run: `cargo run --release --example risk_monitor`

use rsd15k::dataset::splits::post_level_windows;
use rsd15k::features::FeatureExtractor;
use rsd15k::gbdt::{BinnedMatrix, Booster, BoosterConfig};
use rsd15k::prelude::*;

fn main() -> Result<()> {
    let seed = 13;
    let (dataset, _) = DatasetBuilder::new(BuildConfig::scaled(seed, 4_000, 80)).build()?;
    let splits = DatasetSplits::new(
        &dataset,
        SplitConfig {
            seed,
            ..Default::default()
        },
    )?;

    // Train on post-level windows of training users.
    let mut train_windows = Vec::new();
    for w in &splits.train {
        let user = dataset.users.iter().find(|u| u.id == w.user).expect("user");
        train_windows.extend(post_level_windows(&dataset, user, 5, 8));
    }
    let extractor = FeatureExtractor::fit(&dataset, &train_windows, 200)?;
    let x: Vec<Vec<f32>> = extractor.transform_all(&dataset, &train_windows);
    let y: Vec<usize> = train_windows.iter().map(|w| w.label.index()).collect();
    let matrix = BinnedMatrix::fit(x, 64)?;
    let booster = Booster::fit(
        &matrix,
        &y,
        None,
        BoosterConfig {
            n_classes: 4,
            n_rounds: 60,
            early_stopping: 0,
            seed,
            ..Default::default()
        },
    )?;

    // Monitor the most active test user.
    let test_user = splits
        .test
        .iter()
        .max_by_key(|w| {
            dataset
                .users
                .iter()
                .find(|u| u.id == w.user)
                .map_or(0, |u| u.post_indices.len())
        })
        .expect("non-empty test split");
    let user = dataset
        .users
        .iter()
        .find(|u| u.id == test_user.user)
        .expect("user");
    println!(
        "monitoring user {} ({} posts):\n",
        user.id,
        user.post_indices.len()
    );

    let mut prev_level: Option<RiskLevel> = None;
    for window in post_level_windows(&dataset, user, 5, usize::MAX) {
        let features = extractor.transform(&dataset, &window);
        let probs = booster.predict_proba_row(&features);
        let pred_idx = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let pred = RiskLevel::from_index(pred_idx)?;
        let &last_post = window.post_indices.last().unwrap();
        let t = dataset.posts[last_post].created;
        let escalated = prev_level.is_some_and(|p| pred > p);
        println!(
            "  {t}  predicted {:<9}  p={:.2}  truth {:<9} {}",
            pred.name(),
            probs[pred_idx],
            window.label.name(),
            if escalated {
                "<-- ESCALATION ALERT"
            } else {
                ""
            }
        );
        prev_level = Some(pred);
    }
    Ok(())
}
