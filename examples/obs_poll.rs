//! Poll the live introspection endpoint a serving run exposes when
//! `RSD_OBS_HTTP=<port>` is set — a dependency-free client, ten lines of
//! `std::net::TcpStream`, no curl required.
//!
//! ```text
//! RSD_OBS_HTTP=9100 RSD_OBS_TICK_MS=100 cargo run --release --bin loadgen &
//! cargo run --release --example obs_poll 9100 /health
//! cargo run --release --example obs_poll 9100 /metrics
//! cargo run --release --example obs_poll 9100 /snapshot
//! ```
//!
//! Prints the raw HTTP response (status line, headers, body) so CI can
//! grep for `200 OK`, `"status":"ok"`, or a metric name directly.

use std::io::{Read, Write};
use std::net::TcpStream;

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args
        .next()
        .and_then(|p| p.parse().ok())
        .expect("usage: obs_poll <port> [/metrics|/health|/snapshot]");
    let path = args.next().unwrap_or_else(|| "/health".to_string());

    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    print!("{response}");
}
