//! Quickstart: the whole RSD-15K pipeline in one small run.
//!
//! Builds a scaled-down dataset end-to-end (generation → simulated crawl →
//! preprocessing → selection → annotation campaign), prints its Table I
//! distribution and kappa, then trains the XGBoost baseline and reports
//! user-level risk-assessment metrics.
//!
//! Run: `cargo run --release --example quickstart`

use rsd15k::dataset::stats::class_distribution;
use rsd15k::prelude::*;

fn main() -> Result<()> {
    let seed = 7;
    println!("== building dataset (scaled: 4,000 raw users -> 80 annotated) ==");
    let (dataset, report) = DatasetBuilder::new(BuildConfig::scaled(seed, 4_000, 80)).build()?;
    println!(
        "raw pool: {} posts / {} users; crawled via {} API requests",
        report.raw_posts, report.raw_users, report.crawl.requests
    );
    println!(
        "preprocessing removed {} irrelevant, {} duplicates, {} too-short",
        report.preprocess.removed_irrelevant,
        report.preprocess.removed_duplicates,
        report.preprocess.removed_too_short
    );
    println!(
        "annotated: {} posts / {} users; Fleiss kappa {:.4}",
        dataset.n_posts(),
        dataset.n_users(),
        report.campaign.fleiss_kappa
    );

    println!("\n== Table I (this build) ==");
    for row in class_distribution(&dataset) {
        println!(
            "  {:<10} {:>5}  {:>6.2}%",
            row.category, row.count, row.percentage
        );
    }

    println!("\n== user-level task: 80/10/10 user-disjoint split, window = 5 ==");
    let splits = DatasetSplits::new(
        &dataset,
        SplitConfig {
            seed,
            ..Default::default()
        },
    )?;
    println!(
        "  train {} / valid {} / test {} users",
        splits.train.len(),
        splits.valid.len(),
        splits.test.len()
    );

    println!("\n== XGBoost baseline ==");
    let data = BenchData {
        dataset: &dataset,
        splits: &splits,
        unlabeled: &[],
        seed,
    };
    let outcome = XgboostBaseline::new(XgboostConfig::default()).run(&data)?;
    print!("{}", outcome.report);
    for (k, v) in &outcome.extra {
        if k.starts_with("importance") {
            println!("  {k}: {v}");
        }
    }
    Ok(())
}
