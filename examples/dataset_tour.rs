//! Dataset tour: the analysis surface beyond the headline benchmark —
//! serialization round-trip, privacy audit, temporal partitioning,
//! k-fold cross-validation, trajectory analytics, and uncertainty-aware
//! agreement statistics.
//!
//! Run: `cargo run --release --example dataset_tour`

use rsd15k::dataset::splits::{final_post_quantile, kfold, temporal_partition};
use rsd15k::dataset::trajectory::trajectory_report;
use rsd15k::dataset::{io, privacy};
use rsd15k::eval::bootstrap_metrics;
use rsd15k::prelude::*;

fn main() -> Result<()> {
    let seed = 23;
    let (dataset, report) = DatasetBuilder::new(BuildConfig::scaled(seed, 4_000, 80)).build()?;
    println!(
        "built {} posts / {} users (kappa {:.3}, alpha {:.3})",
        dataset.n_posts(),
        dataset.n_users(),
        report.campaign.fleiss_kappa,
        report.campaign.krippendorff_alpha
    );

    // Round-trip through the release format.
    let mut buf = Vec::new();
    io::to_jsonl(&dataset, &mut buf)?;
    let restored = io::from_jsonl(&buf[..])?;
    assert_eq!(dataset, restored);
    println!("JSONL round-trip: {} bytes, identical", buf.len());

    // Privacy audit (§IV).
    let audit = privacy::audit(&dataset);
    println!(
        "privacy audit: {} posts scanned, {}",
        audit.posts_scanned,
        if audit.passed() { "clean" } else { "FINDINGS!" }
    );

    // Chronological split: no training label postdates test context.
    let cutoff = final_post_quantile(&dataset, 0.7);
    let (early, late) = temporal_partition(&dataset, cutoff, 5)?;
    println!(
        "temporal partition at {cutoff}: {} early users / {} late users",
        early.len(),
        late.len()
    );

    // User-disjoint 5-fold CV.
    let folds = kfold(&dataset, 5, 5, seed)?;
    println!(
        "5-fold CV: test sizes {:?}",
        folds.iter().map(|(_, t)| t.len()).collect::<Vec<_>>()
    );

    // Trajectory analytics.
    let traj = trajectory_report(&dataset);
    println!(
        "trajectories: persistence {:.2}, escalation rate {:.2}, {:.0}% of users reach BR/AT",
        traj.persistence,
        traj.escalation_rate,
        traj.users_reaching_high_risk * 100.0
    );

    // Bootstrap CI for a trivial majority-class predictor on fold 0.
    let (_, test) = &folds[0];
    let truth: Vec<usize> = test.iter().map(|w| w.label.index()).collect();
    let majority = RiskLevel::Ideation.index();
    let pred = vec![majority; truth.len()];
    let (acc, f1) = bootstrap_metrics(4, &truth, &pred, 500, 0.95, seed)?;
    println!(
        "majority-class baseline on fold 0: acc {:.2} [{:.2}, {:.2}] @95%, macro-F1 {:.2}",
        acc.estimate, acc.lo, acc.hi, f1.estimate
    );
    Ok(())
}
